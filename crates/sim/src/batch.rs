//! Bit-parallel batch simulation: 64 stimulus vectors per pass.
//!
//! Each net's four-state value is encoded as two 64-bit planes — a
//! *value* plane and an *unknown* plane — with one bit per lane
//! (stimulus vector):
//!
//! | state | value bit | unknown bit |
//! |-------|-----------|-------------|
//! | `0`   | 0         | 0           |
//! | `1`   | 1         | 0           |
//! | `X`   | 0         | 1           |
//! | `Z`   | 1         | 1           |
//!
//! One pass over the levelized evaluation order then simulates up to
//! 64 independent stimulus vectors per gate operation using plain
//! word-wide boolean algebra, giving a large constant-factor speedup
//! over scalar simulation for sweeps. The plane kernels reproduce the
//! scalar simulator's four-state semantics *exactly* — including X/Z
//! pessimism, LUT cofactor analysis, mux agreement on unknown selects,
//! and memory-word agreement on unknown addresses — so a
//! [`BatchSimulator`] lane is bit-identical to a [`Simulator`] run of
//! the same stimulus.
//!
//! [`Simulator`]: crate::Simulator
//!
//! # Example
//!
//! ```
//! use ipd_hdl::{Circuit, LogicVec, PortSpec};
//! use ipd_sim::BatchSimulator;
//! use ipd_techlib::LogicCtx;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // y = a & b, evaluated for four input pairs at once.
//! let mut circuit = Circuit::new("and_gate");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.add_port(PortSpec::input("a", 1))?;
//! let b = ctx.add_port(PortSpec::input("b", 1))?;
//! let y = ctx.add_port(PortSpec::output("y", 1))?;
//! ctx.and2(a, b, y)?;
//!
//! let mut sim = BatchSimulator::new(&circuit, 4)?;
//! for lane in 0..4 {
//!     sim.set_lane("a", lane, &LogicVec::from_u64(u64::from(lane >= 2), 1))?;
//!     sim.set_lane("b", lane, &LogicVec::from_u64(u64::from(lane % 2 == 1), 1))?;
//! }
//! let y: Vec<_> = (0..4).map(|l| sim.peek_lane("y", l).unwrap().to_u64()).collect();
//! assert_eq!(y, [Some(0), Some(0), Some(0), Some(1)]);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use ipd_hdl::{Circuit, FlatNetlist, Logic, LogicVec, NetId, PortDir};
use ipd_techlib::PrimKind;

use crate::compile::{compile, Compiled, EvalFunc, SeqUpdate};
use crate::error::SimError;
use crate::waveform::Trace;

/// Maximum number of lanes a [`BatchSimulator`] can hold (one bit per
/// lane in each 64-bit plane word).
pub const MAX_LANES: usize = 64;

/// Two bit-planes holding one four-state value per lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Planes {
    /// Value plane.
    pub v: u64,
    /// Unknown plane (set for `X` and `Z`).
    pub u: u64,
}

impl Planes {
    /// The same logic value in every lane.
    pub(crate) fn splat(value: Logic) -> Self {
        match value {
            Logic::Zero => Planes { v: 0, u: 0 },
            Logic::One => Planes { v: !0, u: 0 },
            Logic::X => Planes { v: 0, u: !0 },
            Logic::Z => Planes { v: !0, u: !0 },
        }
    }

    /// The logic value in one lane.
    pub(crate) fn lane(self, lane: usize) -> Logic {
        match ((self.v >> lane) & 1, (self.u >> lane) & 1) {
            (0, 0) => Logic::Zero,
            (1, 0) => Logic::One,
            (0, _) => Logic::X,
            _ => Logic::Z,
        }
    }

    /// This plane pair with one lane replaced.
    pub(crate) fn with_lane(self, lane: usize, value: Logic) -> Self {
        let bit = 1u64 << lane;
        let single = Planes::splat(value);
        Planes {
            v: (self.v & !bit) | (single.v & bit),
            u: (self.u & !bit) | (single.u & bit),
        }
    }
}

/// Lanes where the value is a driven 0.
#[inline]
fn known0(p: Planes) -> u64 {
    !p.v & !p.u
}

/// Lanes where the value is a driven 1.
#[inline]
fn known1(p: Planes) -> u64 {
    p.v & !p.u
}

/// Four-state NOT: `X`/`Z` → `X`.
#[inline]
pub(crate) fn not_k(p: Planes) -> Planes {
    Planes {
        v: !p.v & !p.u,
        u: p.u,
    }
}

/// Buffer pessimism: driven values pass, `X`/`Z` → `X`.
#[inline]
pub(crate) fn pess(p: Planes) -> Planes {
    Planes {
        v: p.v & !p.u,
        u: p.u,
    }
}

/// Four-state AND: a driven 0 dominates any unknown.
#[inline]
pub(crate) fn and_k(a: Planes, b: Planes) -> Planes {
    let zero = known0(a) | known0(b);
    let one = known1(a) & known1(b);
    Planes {
        v: one,
        u: !(zero | one),
    }
}

/// Four-state OR: a driven 1 dominates any unknown.
#[inline]
pub(crate) fn or_k(a: Planes, b: Planes) -> Planes {
    let one = known1(a) | known1(b);
    let zero = known0(a) & known0(b);
    Planes {
        v: one,
        u: !(zero | one),
    }
}

/// Four-state XOR: known only when both inputs are driven.
#[inline]
pub(crate) fn xor_k(a: Planes, b: Planes) -> Planes {
    let u = a.u | b.u;
    Planes {
        v: (a.v ^ b.v) & !u,
        u,
    }
}

/// Four-state 2:1 select: `sel=0` → `d0`, `sel=1` → `d1` (both
/// pessimized), unknown select → the common value when both data
/// inputs are driven and agree, else `X`.
#[inline]
pub(crate) fn mux_k(sel: Planes, d0: Planes, d1: Planes) -> Planes {
    let s0 = known0(sel);
    let s1 = known1(sel);
    let su = sel.u;
    let p0 = pess(d0);
    let p1 = pess(d1);
    let agree = !d0.u & !d1.u & !(d0.v ^ d1.v);
    Planes {
        v: (s0 & p0.v) | (s1 & p1.v) | (su & agree & d0.v),
        u: (s0 & p0.u) | (s1 & p1.u) | (su & !agree),
    }
}

/// LUT evaluation by Shannon expansion over the inputs. Per lane this
/// is exactly the scalar cofactor analysis: a known input selects its
/// cofactor, an unknown input yields a known result only when both
/// cofactors are driven and agree.
pub(crate) fn lut_k(n: usize, init: u16, ins: &[Planes]) -> Planes {
    if n == 0 {
        return Planes::splat(Logic::from_bool(init & 1 == 1));
    }
    let half = 1u32 << (n - 1);
    let lo = lut_k(n - 1, init & ((1u32 << half) - 1) as u16, ins);
    let hi = lut_k(n - 1, (u32::from(init) >> half) as u16, ins);
    mux_k(ins[n - 1], lo, hi)
}

/// Asynchronous 16×1 word read with a 4-bit address. Known addresses
/// select their word bit; lanes with any unknown address bit read the
/// common value when all 16 word bits are driven and agree, else `X`.
pub(crate) fn word_read_k(addr: &[Planes], word: &[Planes; 16]) -> Planes {
    let mut unk = 0u64;
    for a in addr {
        unk |= a.u;
    }
    let mut v = 0u64;
    let mut u = 0u64;
    for (idx, w) in word.iter().enumerate() {
        let mut sel = !0u64;
        for (i, a) in addr.iter().enumerate() {
            sel &= if (idx >> i) & 1 == 1 {
                known1(*a)
            } else {
                known0(*a)
            };
        }
        v |= sel & w.v;
        u |= sel & w.u;
    }
    let mut agree1 = !0u64;
    let mut agree0 = !0u64;
    for w in word {
        agree1 &= known1(*w);
        agree0 &= known0(*w);
    }
    Planes {
        v: (v & !unk) | (unk & agree1),
        u: (u & !unk) | (unk & !(agree1 | agree0)),
    }
}

/// Plane-wise combinational evaluation of one primitive; mirrors
/// [`PrimKind::eval_comb`] lane-for-lane.
fn eval_prim_k(kind: &PrimKind, ins: &[Planes]) -> Planes {
    match kind {
        PrimKind::Inv => not_k(ins[0]),
        PrimKind::Buf | PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => pess(ins[0]),
        PrimKind::And(n) => ins[1..*n as usize]
            .iter()
            .fold(ins[0], |acc, &i| and_k(acc, i)),
        PrimKind::Or(n) => ins[1..*n as usize]
            .iter()
            .fold(ins[0], |acc, &i| or_k(acc, i)),
        PrimKind::Nand(n) => not_k(eval_prim_k(&PrimKind::And(*n), ins)),
        PrimKind::Nor(n) => not_k(eval_prim_k(&PrimKind::Or(*n), ins)),
        PrimKind::Xor(n) => ins[1..*n as usize]
            .iter()
            .fold(ins[0], |acc, &i| xor_k(acc, i)),
        PrimKind::Xnor2 => not_k(xor_k(ins[0], ins[1])),
        // mux2 inputs are [i0, i1, sel].
        PrimKind::Mux2 => mux_k(ins[2], ins[0], ins[1]),
        PrimKind::Lut { inputs, init } => lut_k(*inputs as usize, *init, ins),
        // muxcy inputs are [ci, di, s]; s=1 selects the carry-in.
        PrimKind::Muxcy => mux_k(ins[2], ins[1], ins[0]),
        PrimKind::Xorcy => xor_k(ins[0], ins[1]),
        PrimKind::MultAnd => and_k(ins[0], ins[1]),
        PrimKind::Rom16x1 { init } => lut_k(4, *init, ins),
        PrimKind::Gnd => Planes::splat(Logic::Zero),
        PrimKind::Vcc => Planes::splat(Logic::One),
        PrimKind::Ff { .. } | PrimKind::Srl16 { .. } | PrimKind::Ram16x1 { .. } => {
            unreachable!("sequential primitives are not evaluation nodes")
        }
    }
}

/// Clock-enable style masks for a control net: (known-1, known-0,
/// unknown) lane sets.
#[inline]
fn ctl_masks(p: Planes) -> (u64, u64, u64) {
    (known1(p), known0(p), p.u)
}

/// State storage for one sequential element, lane-parallel.
// Word states are read and written every cycle; boxing them to shrink
// the enum would trade the FF variants' slack for a pointer chase in
// the sequential-update hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum BatchState {
    /// Flip-flop bit planes.
    Bit(Planes),
    /// 16-bit memory/shift-register word, one plane pair per bit.
    Word([Planes; 16]),
}

/// A recorded waveform before per-lane extraction.
#[derive(Debug, Clone)]
struct BatchTrace {
    name: String,
    nets: Vec<NetId>,
    /// One entry per cycle; each entry holds the planes of every net.
    samples: Vec<Vec<Planes>>,
}

/// A lane-parallel batch simulator: up to [`MAX_LANES`] independent
/// stimulus vectors advanced together through the same compiled
/// circuit.
///
/// Lane `l` of a `BatchSimulator` behaves bit-identically (including
/// `X`/`Z` propagation) to a scalar [`Simulator`](crate::Simulator)
/// driven with lane `l`'s stimulus.
#[derive(Debug, Clone)]
pub struct BatchSimulator {
    compiled: Compiled,
    lanes: usize,
    nets: Vec<Planes>,
    states: Vec<BatchState>,
    input_values: HashMap<String, Vec<Planes>>,
    dirty: bool,
    cycle_count: u64,
    traces: Vec<BatchTrace>,
}

impl BatchSimulator {
    /// Compiles a circuit for `lanes`-wide batch simulation,
    /// auto-detecting the clock (an input named `clk`, `c` or
    /// `clock`).
    ///
    /// # Errors
    ///
    /// As for [`Simulator::new`](crate::Simulator::new), plus
    /// [`SimError::InvalidLanes`] when `lanes` is 0 or above
    /// [`MAX_LANES`].
    pub fn new(circuit: &Circuit, lanes: usize) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, None, lanes)
    }

    /// Compiles a circuit with an explicit clock port.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn with_clock(circuit: &Circuit, clock_port: &str, lanes: usize) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, Some(clock_port), lanes)
    }

    /// Compiles an already-flattened design.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn from_flat(
        flat: &FlatNetlist,
        clock_port: Option<&str>,
        lanes: usize,
    ) -> Result<Self, SimError> {
        let compiled = compile(flat, clock_port)?;
        Self::from_compiled(compiled, lanes)
    }

    /// Instantiates a simulator over an already-compiled model (the
    /// sweep runner compiles once and stamps out per-shard instances
    /// with exact lane counts).
    pub(crate) fn from_compiled(compiled: Compiled, lanes: usize) -> Result<Self, SimError> {
        if lanes == 0 || lanes > MAX_LANES {
            return Err(SimError::InvalidLanes { lanes });
        }
        let mut sim = BatchSimulator {
            lanes,
            nets: vec![Planes::splat(Logic::X); compiled.net_count],
            states: Vec::new(),
            input_values: HashMap::new(),
            dirty: true,
            cycle_count: 0,
            traces: Vec::new(),
            compiled,
        };
        sim.power_on();
        Ok(sim)
    }

    /// The compiled model (shared source for program lowering).
    pub(crate) fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    /// Number of stimulus lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// `true` when the combinational network was fully levelized.
    #[must_use]
    pub fn is_levelized(&self) -> bool {
        self.compiled.levelized
    }

    /// Cycles simulated since power-on or the last reset.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycle_count
    }

    /// Names, directions and widths of the primary ports.
    #[must_use]
    pub fn ports(&self) -> Vec<(String, PortDir, u32)> {
        self.compiled
            .ports
            .iter()
            .map(|p| (p.name.clone(), p.dir, p.nets.len() as u32))
            .collect()
    }

    fn power_on(&mut self) {
        self.nets.fill(Planes::splat(Logic::X));
        self.states.clear();
        for update in &self.compiled.seq {
            match update {
                SeqUpdate::Ff { init, .. } => {
                    self.states.push(BatchState::Bit(Planes::splat(*init)))
                }
                SeqUpdate::Srl16 { init, .. } | SeqUpdate::Ram16 { init, .. } => {
                    let mut word = [Planes::default(); 16];
                    for (i, bit) in word.iter_mut().enumerate() {
                        *bit = Planes::splat(Logic::from_bool((init >> i) & 1 == 1));
                    }
                    self.states.push(BatchState::Word(word));
                }
            }
        }
        for &(net, v) in &self.compiled.const_drives {
            self.nets[net.index()] = Planes::splat(v);
        }
        for &net in &self.compiled.black_box_outputs {
            self.nets[net.index()] = Planes::splat(Logic::X);
        }
        self.drive_state_outputs();
        for &net in &self.compiled.clock_nets {
            self.nets[net.index()] = Planes::splat(Logic::Zero);
        }
        self.dirty = true;
    }

    /// Resets all sequential state to power-on values in every lane,
    /// keeping the current input assignments.
    pub fn reset(&mut self) {
        let inputs = std::mem::take(&mut self.input_values);
        self.power_on();
        self.cycle_count = 0;
        for (port, planes) in inputs {
            if let Some(info) = self.compiled.ports.iter().find(|p| p.name == port) {
                for (i, &net) in info.nets.iter().enumerate() {
                    self.nets[net.index()] = planes[i];
                }
                self.input_values.insert(port, planes);
            }
        }
        self.dirty = true;
    }

    fn port_info(&self, port: &str) -> Result<usize, SimError> {
        self.compiled
            .ports
            .iter()
            .position(|p| p.name == port)
            .ok_or_else(|| SimError::UnknownPort {
                port: port.to_owned(),
            })
    }

    fn check_lane(&self, lane: usize) -> Result<(), SimError> {
        if lane >= self.lanes {
            return Err(SimError::LaneOutOfRange {
                lane,
                lanes: self.lanes,
            });
        }
        Ok(())
    }

    /// Drives a primary input port in one lane.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports, non-inputs, width mismatches and lanes
    /// outside the configured count.
    pub fn set_lane(&mut self, port: &str, lane: usize, value: &LogicVec) -> Result<(), SimError> {
        self.check_lane(lane)?;
        let idx = self.port_info(port)?;
        let info = &self.compiled.ports[idx];
        if info.dir != PortDir::Input {
            return Err(SimError::NotAnInput {
                port: port.to_owned(),
            });
        }
        if info.nets.len() != value.width() {
            return Err(SimError::WidthMismatch {
                port: port.to_owned(),
                expected: info.nets.len() as u32,
                found: value.width() as u32,
            });
        }
        let nets = info.nets.clone();
        for (i, &net) in nets.iter().enumerate() {
            let cur = self.nets[net.index()];
            self.nets[net.index()] = cur.with_lane(lane, value.bit(i));
        }
        let snapshot: Vec<Planes> = nets.iter().map(|n| self.nets[n.index()]).collect();
        self.input_values.insert(port.to_owned(), snapshot);
        self.dirty = true;
        Ok(())
    }

    /// Drives a primary input port with the same value in every lane.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::set_lane`].
    pub fn set_broadcast(&mut self, port: &str, value: &LogicVec) -> Result<(), SimError> {
        for lane in 0..self.lanes {
            self.set_lane(port, lane, value)?;
        }
        Ok(())
    }

    /// Drives a primary input port with one value per lane
    /// (`values.len()` must equal the lane count).
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::set_lane`], plus
    /// [`SimError::InvalidLanes`] when the slice length differs from
    /// the lane count.
    pub fn set_lanes(&mut self, port: &str, values: &[LogicVec]) -> Result<(), SimError> {
        if values.len() != self.lanes {
            return Err(SimError::InvalidLanes {
                lanes: values.len(),
            });
        }
        for (lane, value) in values.iter().enumerate() {
            self.set_lane(port, lane, value)?;
        }
        Ok(())
    }

    /// Convenience: drives one lane with an unsigned integer.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::set_lane`].
    pub fn set_u64_lane(&mut self, port: &str, lane: usize, value: u64) -> Result<(), SimError> {
        let idx = self.port_info(port)?;
        let width = self.compiled.ports[idx].nets.len();
        self.set_lane(port, lane, &LogicVec::from_u64(value, width))
    }

    /// Convenience: drives one lane with a signed integer (two's
    /// complement).
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::set_lane`].
    pub fn set_i64_lane(&mut self, port: &str, lane: usize, value: i64) -> Result<(), SimError> {
        let idx = self.port_info(port)?;
        let width = self.compiled.ports[idx].nets.len();
        self.set_lane(port, lane, &LogicVec::from_i64(value, width))
    }

    /// Reads the current value of any primary port in one lane.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports, out-of-range lanes, or if settling
    /// oscillates.
    pub fn peek_lane(&mut self, port: &str, lane: usize) -> Result<LogicVec, SimError> {
        self.check_lane(lane)?;
        self.ensure_settled()?;
        let idx = self.port_info(port)?;
        Ok(self.compiled.ports[idx]
            .nets
            .iter()
            .map(|n| self.nets[n.index()].lane(lane))
            .collect())
    }

    /// Reads a primary port across all lanes (one `LogicVec` per
    /// lane).
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::peek_lane`].
    pub fn peek_lanes(&mut self, port: &str) -> Result<Vec<LogicVec>, SimError> {
        self.ensure_settled()?;
        let idx = self.port_info(port)?;
        let nets = &self.compiled.ports[idx].nets;
        Ok((0..self.lanes)
            .map(|lane| {
                nets.iter()
                    .map(|n| self.nets[n.index()].lane(lane))
                    .collect()
            })
            .collect())
    }

    /// Reads one internal net by hierarchical name in one lane.
    ///
    /// # Errors
    ///
    /// Fails for unknown nets, out-of-range lanes, or if settling
    /// oscillates.
    pub fn peek_net_lane(&mut self, net: &str, lane: usize) -> Result<Logic, SimError> {
        self.check_lane(lane)?;
        self.ensure_settled()?;
        let id =
            self.compiled
                .name_to_net
                .get(net)
                .copied()
                .ok_or_else(|| SimError::UnknownNet {
                    net: net.to_owned(),
                })?;
        Ok(self.nets[id.index()].lane(lane))
    }

    /// Reads a flip-flop's current state by instance path in one lane.
    #[must_use]
    pub fn ff_state_lane(&self, instance_path: &str, lane: usize) -> Option<Logic> {
        if lane >= self.lanes {
            return None;
        }
        let idx = self
            .compiled
            .state_paths
            .iter()
            .position(|p| p == instance_path)?;
        match &self.states[idx] {
            BatchState::Bit(p) => Some(p.lane(lane)),
            BatchState::Word(_) => None,
        }
    }

    /// Reads the 16-bit contents of a shift register or RAM by
    /// instance path in one lane.
    #[must_use]
    pub fn memory_lane(&self, instance_path: &str, lane: usize) -> Option<LogicVec> {
        if lane >= self.lanes {
            return None;
        }
        let idx = self
            .compiled
            .state_paths
            .iter()
            .position(|p| p == instance_path)?;
        match &self.states[idx] {
            BatchState::Word(word) => Some(word.iter().map(|p| p.lane(lane)).collect()),
            BatchState::Bit(_) => None,
        }
    }

    /// Forces a flip-flop's current state by instance path in one
    /// lane, driving its output net so downstream logic observes the
    /// forced value at the next settle. Returns `false` for unknown
    /// paths, word-state elements, or out-of-range lanes.
    ///
    /// This is the counterexample-replay back door used by
    /// `ipd-verify`: a SAT witness names a register cut state, and
    /// replay must start the simulator from exactly that state.
    pub fn set_ff_lane(&mut self, instance_path: &str, lane: usize, value: Logic) -> bool {
        if lane >= self.lanes {
            return false;
        }
        let Some(idx) = self
            .compiled
            .state_paths
            .iter()
            .position(|p| p == instance_path)
        else {
            return false;
        };
        let BatchState::Bit(p) = self.states[idx] else {
            return false;
        };
        let forced = p.with_lane(lane, value);
        self.states[idx] = BatchState::Bit(forced);
        for update in &self.compiled.seq {
            if let SeqUpdate::Ff { state, q, .. } = update {
                if *state == idx {
                    self.nets[q.index()] = forced;
                }
            }
        }
        self.dirty = true;
        true
    }

    /// Forces the 16-bit contents of a shift register or RAM by
    /// instance path in one lane (counterexample-replay back door).
    /// Returns `false` for unknown paths, bit-state elements,
    /// out-of-range lanes, or a `value` that is not 16 bits wide.
    pub fn set_memory_lane(&mut self, instance_path: &str, lane: usize, value: &LogicVec) -> bool {
        if lane >= self.lanes || value.width() != 16 {
            return false;
        }
        let Some(idx) = self
            .compiled
            .state_paths
            .iter()
            .position(|p| p == instance_path)
        else {
            return false;
        };
        let BatchState::Word(word) = &mut self.states[idx] else {
            return false;
        };
        for (i, bit) in word.iter_mut().enumerate() {
            *bit = bit.with_lane(lane, value.bit(i));
        }
        self.dirty = true;
        true
    }

    /// Lists the instance paths of all stateful elements.
    #[must_use]
    pub fn state_elements(&self) -> &[String] {
        &self.compiled.state_paths
    }

    /// Advances the global clock by `n` cycles in every lane.
    ///
    /// # Errors
    ///
    /// Fails if combinational settling oscillates.
    pub fn cycle(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.one_cycle()?;
        }
        Ok(())
    }

    fn one_cycle(&mut self) -> Result<(), SimError> {
        self.ensure_settled()?;
        let mut next = self.states.clone();
        for update in &self.compiled.seq {
            match update {
                SeqUpdate::Ff {
                    state,
                    d,
                    ce,
                    control,
                    q: _,
                    init: _,
                } => {
                    let BatchState::Bit(cur) = self.states[*state] else {
                        unreachable!("ff state is a bit")
                    };
                    let d = self.nets[d.index()];
                    let (ce1, ce0, ceu) = match ce {
                        None => (!0u64, 0u64, 0u64),
                        Some(c) => ctl_masks(self.nets[c.index()]),
                    };
                    let mut v = (ce1 & d.v) | (ce0 & cur.v);
                    let mut u = (ce1 & d.u) | (ce0 & cur.u) | ceu;
                    if let Some((_kind, net)) = control {
                        // One clears, zero keeps, unknown poisons —
                        // identical for async clear and sync reset at
                        // cycle granularity.
                        let (c1, c0, cu) = ctl_masks(self.nets[net.index()]);
                        let _ = c1;
                        v &= c0;
                        u = (u & c0) | cu;
                    }
                    next[*state] = BatchState::Bit(Planes { v, u });
                }
                SeqUpdate::Srl16 {
                    state,
                    d,
                    ce,
                    init: _,
                } => {
                    let BatchState::Word(cur) = &self.states[*state] else {
                        unreachable!("srl state is a word")
                    };
                    let d = self.nets[d.index()];
                    let (ce1, ce0, ceu) = ctl_masks(self.nets[ce.index()]);
                    let mut word = [Planes::default(); 16];
                    for (i, slot) in word.iter_mut().enumerate() {
                        let src = if i == 0 { d } else { cur[i - 1] };
                        slot.v = (ce1 & src.v) | (ce0 & cur[i].v);
                        slot.u = (ce1 & src.u) | (ce0 & cur[i].u) | ceu;
                    }
                    next[*state] = BatchState::Word(word);
                }
                SeqUpdate::Ram16 {
                    state,
                    d,
                    we,
                    addr,
                    init: _,
                } => {
                    let BatchState::Word(cur) = &self.states[*state] else {
                        unreachable!("ram state is a word")
                    };
                    let d = self.nets[d.index()];
                    let (we1, we0, weu) = ctl_masks(self.nets[we.index()]);
                    let addr: Vec<Planes> = addr.iter().map(|a| self.nets[a.index()]).collect();
                    let mut addr_unk = 0u64;
                    for a in &addr {
                        addr_unk |= a.u;
                    }
                    // A write with any unknown address bit poisons the
                    // whole word, as does an unknown write-enable.
                    let xmask = weu | (we1 & addr_unk);
                    let mut word = [Planes::default(); 16];
                    for (idx, slot) in word.iter_mut().enumerate() {
                        let mut sel = !0u64;
                        for (i, a) in addr.iter().enumerate() {
                            sel &= if (idx >> i) & 1 == 1 {
                                known1(*a)
                            } else {
                                known0(*a)
                            };
                        }
                        let write = we1 & sel;
                        let hold = we0 | (we1 & !addr_unk & !sel);
                        slot.v = (write & d.v) | (hold & cur[idx].v);
                        slot.u = (write & d.u) | (hold & cur[idx].u) | xmask;
                    }
                    next[*state] = BatchState::Word(word);
                }
            }
        }
        self.states = next;
        self.drive_state_outputs();
        self.dirty = true;
        self.ensure_settled()?;
        self.cycle_count += 1;
        self.sample_traces();
        Ok(())
    }

    fn drive_state_outputs(&mut self) {
        for update in &self.compiled.seq {
            if let SeqUpdate::Ff { state, q, .. } = update {
                if let BatchState::Bit(p) = self.states[*state] {
                    self.nets[q.index()] = p;
                }
            }
        }
    }

    fn lane_mask(&self) -> u64 {
        if self.lanes == MAX_LANES {
            !0
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    fn ensure_settled(&mut self) -> Result<(), SimError> {
        if !self.dirty {
            return Ok(());
        }
        if self.compiled.levelized {
            for i in 0..self.compiled.eval_order.len() {
                let value = self.eval_node(i);
                let out = self.compiled.eval_order[i].output;
                self.nets[out.index()] = value;
            }
        } else {
            let mask = self.lane_mask();
            let limit = 2 * self.compiled.eval_order.len() + 8;
            let mut pass = 0;
            loop {
                let mut changed_net: Option<NetId> = None;
                for i in 0..self.compiled.eval_order.len() {
                    let value = self.eval_node(i);
                    let out = self.compiled.eval_order[i].output;
                    let old = self.nets[out.index()];
                    if ((old.v ^ value.v) | (old.u ^ value.u)) & mask != 0 {
                        self.nets[out.index()] = value;
                        changed_net = Some(out);
                    }
                }
                match changed_net {
                    None => break,
                    Some(net) => {
                        pass += 1;
                        if pass > limit {
                            return Err(SimError::Oscillation {
                                net: self.compiled.net_names[net.index()].clone(),
                            });
                        }
                    }
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    fn eval_node(&self, index: usize) -> Planes {
        let node = &self.compiled.eval_order[index];
        // Primitives have at most 4 inputs; avoid a heap allocation
        // per node in the inner loop.
        let mut ins = [Planes::default(); 8];
        for (slot, n) in ins.iter_mut().zip(&node.inputs) {
            *slot = self.nets[n.index()];
        }
        let ins = &ins[..node.inputs.len()];
        match &node.func {
            EvalFunc::Prim(kind) => eval_prim_k(kind, ins),
            EvalFunc::SrlRead { state } | EvalFunc::RamRead { state } => {
                let BatchState::Word(word) = &self.states[*state] else {
                    return Planes::splat(Logic::X);
                };
                word_read_k(ins, word)
            }
        }
    }

    /// Starts recording a per-cycle waveform for a primary port (all
    /// lanes at once; extract with [`BatchSimulator::lane_trace`]).
    ///
    /// # Errors
    ///
    /// Fails for unknown ports.
    pub fn record(&mut self, port: &str) -> Result<(), SimError> {
        let idx = self.port_info(port)?;
        let info = &self.compiled.ports[idx];
        self.traces.push(BatchTrace {
            name: info.name.clone(),
            nets: info.nets.clone(),
            samples: Vec::new(),
        });
        Ok(())
    }

    fn sample_traces(&mut self) {
        for i in 0..self.traces.len() {
            let sample: Vec<Planes> = self.traces[i]
                .nets
                .iter()
                .map(|n| self.nets[n.index()])
                .collect();
            self.traces[i].samples.push(sample);
        }
    }

    /// Extracts the recorded waveform of one port for one lane as a
    /// scalar [`Trace`] (identical to what a scalar simulator run of
    /// that lane's stimulus would have recorded).
    ///
    /// # Errors
    ///
    /// Fails for unrecorded ports or out-of-range lanes.
    pub fn lane_trace(&self, port: &str, lane: usize) -> Result<Trace, SimError> {
        self.check_lane(lane)?;
        let bt =
            self.traces
                .iter()
                .find(|t| t.name == port)
                .ok_or_else(|| SimError::UnknownPort {
                    port: port.to_owned(),
                })?;
        let mut trace = Trace::new(&bt.name, bt.nets.len());
        for sample in &bt.samples {
            trace.push(sample.iter().map(|p| p.lane(lane)).collect());
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// Packs one input combination per lane and checks every lane of
    /// the plane kernel against the scalar `eval_comb`.
    fn check_kernel(kind: &PrimKind, arity: usize) {
        let combos: Vec<Vec<Logic>> = (0..4usize.pow(arity as u32))
            .map(|mut c| {
                (0..arity)
                    .map(|_| {
                        let l = ALL[c % 4];
                        c /= 4;
                        l
                    })
                    .collect()
            })
            .collect();
        for chunk in combos.chunks(MAX_LANES) {
            let mut ins = vec![Planes::default(); arity];
            for (lane, combo) in chunk.iter().enumerate() {
                for (i, &l) in combo.iter().enumerate() {
                    ins[i] = ins[i].with_lane(lane, l);
                }
            }
            let out = eval_prim_k(kind, &ins);
            for (lane, combo) in chunk.iter().enumerate() {
                let expect = kind.eval_comb(combo);
                assert_eq!(out.lane(lane), expect, "{} on {combo:?}", kind.name());
            }
        }
    }

    #[test]
    fn kernels_match_scalar_eval_exhaustively() {
        check_kernel(&PrimKind::Inv, 1);
        check_kernel(&PrimKind::Buf, 1);
        check_kernel(&PrimKind::Ibuf, 1);
        check_kernel(&PrimKind::Obuf, 1);
        check_kernel(&PrimKind::Bufg, 1);
        for n in 2..=4u8 {
            check_kernel(&PrimKind::And(n), n as usize);
            check_kernel(&PrimKind::Or(n), n as usize);
        }
        for n in 2..=3u8 {
            check_kernel(&PrimKind::Nand(n), n as usize);
            check_kernel(&PrimKind::Nor(n), n as usize);
            check_kernel(&PrimKind::Xor(n), n as usize);
        }
        check_kernel(&PrimKind::Xnor2, 2);
        check_kernel(&PrimKind::Mux2, 3);
        check_kernel(&PrimKind::Muxcy, 3);
        check_kernel(&PrimKind::Xorcy, 2);
        check_kernel(&PrimKind::MultAnd, 2);
    }

    #[test]
    fn lut_kernels_match_scalar_eval() {
        // A spread of truth tables per arity, including the degenerate
        // constants and parity (sensitive to every input).
        for inputs in 1..=4u8 {
            let bits = 1u32 << inputs;
            let mask = if bits == 16 {
                0xFFFF
            } else {
                (1u16 << bits) - 1
            };
            for init in [0u16, 0xFFFF, 0x6996, 0xAAAA, 0xCAFE, 0x8001, 0x1234] {
                let kind = PrimKind::Lut {
                    inputs,
                    init: init & mask,
                };
                check_kernel(&kind, inputs as usize);
            }
        }
        check_kernel(&PrimKind::Rom16x1 { init: 0x8001 }, 4);
        check_kernel(&PrimKind::Rom16x1 { init: 0x6996 }, 4);
    }

    #[test]
    fn word_read_matches_scalar_semantics() {
        // Exhaustive over one address bit unknown vs known, with
        // agreeing and disagreeing word contents.
        let agree_one = [Planes::splat(Logic::One); 16];
        let mut mixed = [Planes::splat(Logic::Zero); 16];
        mixed[5] = Planes::splat(Logic::One);

        // Known address 5 reads word[5].
        let addr5 = [
            Planes::splat(Logic::One),
            Planes::splat(Logic::Zero),
            Planes::splat(Logic::One),
            Planes::splat(Logic::Zero),
        ];
        assert_eq!(word_read_k(&addr5, &mixed).lane(0), Logic::One);
        // Unknown address over agreeing contents still reads the value.
        let addr_x = [
            Planes::splat(Logic::X),
            Planes::splat(Logic::Zero),
            Planes::splat(Logic::Zero),
            Planes::splat(Logic::Zero),
        ];
        assert_eq!(word_read_k(&addr_x, &agree_one).lane(0), Logic::One);
        // Unknown address over disagreeing contents is X.
        assert_eq!(word_read_k(&addr_x, &mixed).lane(0), Logic::X);
    }

    #[test]
    fn planes_lane_round_trip() {
        for l in ALL {
            assert_eq!(Planes::splat(l).lane(17), l);
            let p = Planes::splat(Logic::Zero).with_lane(3, l);
            assert_eq!(p.lane(3), l);
            assert_eq!(p.lane(2), Logic::Zero);
        }
    }

    #[test]
    fn invalid_lane_counts_are_rejected() {
        let circuit = Circuit::new("empty");
        assert!(matches!(
            BatchSimulator::new(&circuit, 0),
            Err(SimError::InvalidLanes { lanes: 0 })
        ));
        assert!(matches!(
            BatchSimulator::new(&circuit, 65),
            Err(SimError::InvalidLanes { lanes: 65 })
        ));
    }
}
