//! Simulation errors.

use std::fmt;

/// Errors raised while compiling or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit failed to flatten or contained stale references.
    Hdl(ipd_hdl::HdlError),
    /// A primitive could not be interpreted by the technology library.
    Tech(ipd_techlib::TechError),
    /// A net has more than one driver.
    MultipleDrivers {
        /// Hierarchical net name.
        net: String,
    },
    /// Combinational cycle found during levelization.
    CombinationalLoop {
        /// A net on the cycle.
        net: String,
    },
    /// Relaxation mode failed to reach a fixpoint (oscillation).
    Oscillation {
        /// A net still changing at the iteration limit.
        net: String,
    },
    /// A sequential primitive's clock is not the designated clock net.
    UnsupportedClock {
        /// The instance path of the offending primitive.
        instance: String,
    },
    /// A named port does not exist at the top level.
    UnknownPort {
        /// The requested port name.
        port: String,
    },
    /// A named net does not exist in the flattened design.
    UnknownNet {
        /// The requested net name.
        net: String,
    },
    /// A value's width differs from the port's width.
    WidthMismatch {
        /// The port being driven or read.
        port: String,
        /// The port's width.
        expected: u32,
        /// The supplied value's width.
        found: u32,
    },
    /// Attempted to drive a non-input port.
    NotAnInput {
        /// The port name.
        port: String,
    },
    /// The design contains `inout` ports, which the simulator does not
    /// model.
    InoutUnsupported {
        /// The port name.
        port: String,
    },
    /// `run_until` exhausted its cycle budget without the condition
    /// becoming true.
    Timeout {
        /// The port being watched.
        port: String,
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// A batch simulator was asked for an unconfigured lane.
    LaneOutOfRange {
        /// The requested lane.
        lane: usize,
        /// Lanes configured on the batch simulator.
        lanes: usize,
    },
    /// A batch simulator was configured with an unsupported lane count
    /// (at least 1, at most the engine's plane width: 64 lanes for the
    /// interpreted engine, 256 for the compiled engine).
    InvalidLanes {
        /// The requested lane count.
        lanes: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hdl(e) => write!(f, "circuit error: {e}"),
            SimError::Tech(e) => write!(f, "technology error: {e}"),
            SimError::MultipleDrivers { net } => {
                write!(f, "net {net} has multiple drivers")
            }
            SimError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net}")
            }
            SimError::Oscillation { net } => {
                write!(f, "simulation did not settle; net {net} oscillates")
            }
            SimError::UnsupportedClock { instance } => write!(
                f,
                "sequential primitive {instance} is not driven by the designated clock"
            ),
            SimError::UnknownPort { port } => write!(f, "no top-level port named {port}"),
            SimError::UnknownNet { net } => write!(f, "no net named {net}"),
            SimError::WidthMismatch {
                port,
                expected,
                found,
            } => write!(
                f,
                "width mismatch on {port}: expected {expected} bits, found {found}"
            ),
            SimError::NotAnInput { port } => {
                write!(f, "port {port} is not a primary input")
            }
            SimError::InoutUnsupported { port } => {
                write!(f, "inout port {port} is not supported by the simulator")
            }
            SimError::Timeout { port, cycles } => {
                write!(f, "condition on {port} not met within {cycles} cycles")
            }
            SimError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range: batch has {lanes} lanes")
            }
            SimError::InvalidLanes { lanes } => {
                write!(
                    f,
                    "invalid lane count {lanes}: must be between 1 and the engine's plane width"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Hdl(e) => Some(e),
            SimError::Tech(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ipd_hdl::HdlError> for SimError {
    fn from(e: ipd_hdl::HdlError) -> Self {
        SimError::Hdl(e)
    }
}

impl From<ipd_techlib::TechError> for SimError {
    fn from(e: ipd_techlib::TechError) -> Self {
        SimError::Tech(e)
    }
}
