//! The compiled execution engine: 256 stimulus lanes per pass over
//! flat bytecode.
//!
//! A [`CompiledSimulator`] runs the [`Program`](crate::program)
//! lowered from a compiled netlist. It differs from the interpreted
//! [`BatchSimulator`](crate::BatchSimulator) in three ways:
//!
//! - **Four plane words per net.** Each net holds a [`Planes4`] — a
//!   value plane and an unknown plane of `[u64; 4]` each, i.e. 256
//!   lanes in one 64-byte struct. The kernels below are the word-wise
//!   formulas of the 64-lane engine applied to all four words, so a
//!   lane is bit-identical to the interpreted engine (and therefore to
//!   the scalar simulator).
//! - **Straight-line dispatch.** Combinational settling walks the
//!   program's parallel arrays; there is no per-node `Vec` indirection
//!   or recursive LUT expansion (LUTs fold a mux tree bottom-up over
//!   the same operation DAG the interpreter builds recursively, so the
//!   result is identical).
//! - **Flip-flop state lives in the q-net plane.** A flip-flop's
//!   output net has no combinational driver, so settling never writes
//!   it; the clock edge computes every next-state into scratch first
//!   (reading only pre-edge values) and then commits, preserving the
//!   interpreter's barrier semantics without cloning the state vector
//!   each cycle.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::{Circuit, LogicVec, PortSpec};
//! use ipd_sim::CompiledSimulator;
//! use ipd_techlib::LogicCtx;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // y = a & b, evaluated for four input pairs at once.
//! let mut circuit = Circuit::new("and_gate");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.add_port(PortSpec::input("a", 1))?;
//! let b = ctx.add_port(PortSpec::input("b", 1))?;
//! let y = ctx.add_port(PortSpec::output("y", 1))?;
//! ctx.and2(a, b, y)?;
//!
//! let mut sim = CompiledSimulator::new(&circuit, 4)?;
//! for lane in 0..4 {
//!     sim.set_lane("a", lane, &LogicVec::from_u64(u64::from(lane >= 2), 1))?;
//!     sim.set_lane("b", lane, &LogicVec::from_u64(u64::from(lane % 2 == 1), 1))?;
//! }
//! let y: Vec<_> = (0..4).map(|l| sim.peek_lane("y", l).unwrap().to_u64()).collect();
//! assert_eq!(y, [Some(0), Some(0), Some(0), Some(1)]);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use ipd_hdl::{Circuit, FlatNetlist, Logic, LogicVec, PortDir};

use crate::compile::compile;
use crate::error::SimError;
use crate::program::{OpTag, Program, StateSlot, NO_NET};

/// Maximum number of lanes a [`CompiledSimulator`] can hold (one bit
/// per lane in each of four 64-bit plane words).
pub const COMPILED_MAX_LANES: usize = 256;

/// Plane words per [`Planes4`].
const WORDS: usize = 4;

/// Four pairs of bit-planes holding one four-state value in each of
/// 256 lanes. The encoding per lane matches the 64-lane engine:
/// `(v, u)` = `(0,0)` → `0`, `(1,0)` → `1`, `(0,1)` → `X`,
/// `(1,1)` → `Z`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Planes4 {
    /// Value planes.
    pub v: [u64; WORDS],
    /// Unknown planes (set for `X` and `Z`).
    pub u: [u64; WORDS],
}

impl Planes4 {
    /// The same logic value in every lane.
    pub(crate) fn splat(value: Logic) -> Self {
        let (v, u) = match value {
            Logic::Zero => (0, 0),
            Logic::One => (!0, 0),
            Logic::X => (0, !0),
            Logic::Z => (!0, !0),
        };
        Planes4 {
            v: [v; WORDS],
            u: [u; WORDS],
        }
    }

    /// The logic value in one lane.
    pub(crate) fn lane(self, lane: usize) -> Logic {
        let (w, bit) = (lane / 64, lane % 64);
        match ((self.v[w] >> bit) & 1, (self.u[w] >> bit) & 1) {
            (0, 0) => Logic::Zero,
            (1, 0) => Logic::One,
            (0, _) => Logic::X,
            _ => Logic::Z,
        }
    }

    /// This plane set with one lane replaced.
    pub(crate) fn with_lane(mut self, lane: usize, value: Logic) -> Self {
        let (w, bit) = (lane / 64, lane % 64);
        let mask = 1u64 << bit;
        let single = Planes4::splat(value);
        self.v[w] = (self.v[w] & !mask) | (single.v[w] & mask);
        self.u[w] = (self.u[w] & !mask) | (single.u[w] & mask);
        self
    }
}

/// A 256-lane mask, one word per plane word.
type Mask4 = [u64; WORDS];

/// Lanes where the value is a driven 0.
#[inline]
fn known0(p: Planes4) -> Mask4 {
    std::array::from_fn(|w| !p.v[w] & !p.u[w])
}

/// Lanes where the value is a driven 1.
#[inline]
fn known1(p: Planes4) -> Mask4 {
    std::array::from_fn(|w| p.v[w] & !p.u[w])
}

/// Four-state NOT: `X`/`Z` → `X`.
#[inline]
fn not_k(p: Planes4) -> Planes4 {
    Planes4 {
        v: std::array::from_fn(|w| !p.v[w] & !p.u[w]),
        u: p.u,
    }
}

/// Buffer pessimism: driven values pass, `X`/`Z` → `X`.
#[inline]
fn pess(p: Planes4) -> Planes4 {
    Planes4 {
        v: std::array::from_fn(|w| p.v[w] & !p.u[w]),
        u: p.u,
    }
}

/// Four-state AND: a driven 0 dominates any unknown.
#[inline]
fn and_k(a: Planes4, b: Planes4) -> Planes4 {
    let mut r = Planes4::default();
    for w in 0..WORDS {
        let zero = (!a.v[w] & !a.u[w]) | (!b.v[w] & !b.u[w]);
        let one = (a.v[w] & !a.u[w]) & (b.v[w] & !b.u[w]);
        r.v[w] = one;
        r.u[w] = !(zero | one);
    }
    r
}

/// Four-state OR: a driven 1 dominates any unknown.
#[inline]
fn or_k(a: Planes4, b: Planes4) -> Planes4 {
    let mut r = Planes4::default();
    for w in 0..WORDS {
        let one = (a.v[w] & !a.u[w]) | (b.v[w] & !b.u[w]);
        let zero = (!a.v[w] & !a.u[w]) & (!b.v[w] & !b.u[w]);
        r.v[w] = one;
        r.u[w] = !(zero | one);
    }
    r
}

/// Four-state XOR: known only when both inputs are driven.
#[inline]
fn xor_k(a: Planes4, b: Planes4) -> Planes4 {
    let mut r = Planes4::default();
    for w in 0..WORDS {
        let u = a.u[w] | b.u[w];
        r.v[w] = (a.v[w] ^ b.v[w]) & !u;
        r.u[w] = u;
    }
    r
}

/// Four-state 2:1 select: `sel=0` → `d0`, `sel=1` → `d1` (both
/// pessimized), unknown select → the common value when both data
/// inputs are driven and agree, else `X`.
#[inline]
fn mux_k(sel: Planes4, d0: Planes4, d1: Planes4) -> Planes4 {
    let mut r = Planes4::default();
    for w in 0..WORDS {
        let s0 = !sel.v[w] & !sel.u[w];
        let s1 = sel.v[w] & !sel.u[w];
        let su = sel.u[w];
        let agree = !d0.u[w] & !d1.u[w] & !(d0.v[w] ^ d1.v[w]);
        r.v[w] = (s0 & d0.v[w] & !d0.u[w]) | (s1 & d1.v[w] & !d1.u[w]) | (su & agree & d0.v[w]);
        r.u[w] = (s0 & d0.u[w]) | (s1 & d1.u[w]) | (su & !agree);
    }
    r
}

/// LUT evaluation by an iterative bottom-up mux fold over the same
/// Shannon-expansion tree the interpreter builds recursively: level
/// `l` muxes adjacent cofactor pairs on input `l`, so every lane sees
/// exactly the scalar cofactor analysis.
fn lut_k(n: usize, init: u16, nets: &[Planes4], args: &[u32]) -> Planes4 {
    let mut vals = [Planes4::default(); 16];
    let size = 1usize << n;
    for (i, slot) in vals.iter_mut().take(size).enumerate() {
        *slot = Planes4::splat(Logic::from_bool((init >> i) & 1 == 1));
    }
    let mut width = size;
    for &arg in args.iter().take(n) {
        let sel = nets[arg as usize];
        width /= 2;
        for j in 0..width {
            vals[j] = mux_k(sel, vals[2 * j], vals[2 * j + 1]);
        }
    }
    vals[0]
}

/// Asynchronous 16×1 word read with a 4-bit address. Known addresses
/// select their word bit; lanes with any unknown address bit read the
/// common value when all 16 word bits are driven and agree, else `X`.
fn word_read_k(addr: &[Planes4; 4], word: &[Planes4; 16]) -> Planes4 {
    let mut unk = [0u64; WORDS];
    for a in addr {
        for (uw, &au) in unk.iter_mut().zip(&a.u) {
            *uw |= au;
        }
    }
    let mut v = [0u64; WORDS];
    let mut u = [0u64; WORDS];
    for (idx, wrd) in word.iter().enumerate() {
        let mut sel = [!0u64; WORDS];
        for (i, a) in addr.iter().enumerate() {
            let k = if (idx >> i) & 1 == 1 {
                known1(*a)
            } else {
                known0(*a)
            };
            for w in 0..WORDS {
                sel[w] &= k[w];
            }
        }
        for w in 0..WORDS {
            v[w] |= sel[w] & wrd.v[w];
            u[w] |= sel[w] & wrd.u[w];
        }
    }
    let mut agree1 = [!0u64; WORDS];
    let mut agree0 = [!0u64; WORDS];
    for wrd in word {
        let k1 = known1(*wrd);
        let k0 = known0(*wrd);
        for w in 0..WORDS {
            agree1[w] &= k1[w];
            agree0[w] &= k0[w];
        }
    }
    let mut r = Planes4::default();
    for w in 0..WORDS {
        r.v[w] = (v[w] & !unk[w]) | (unk[w] & agree1[w]);
        r.u[w] = (u[w] & !unk[w]) | (unk[w] & !(agree1[w] | agree0[w]));
    }
    r
}

/// Clock-enable style masks for a control net: (known-1, known-0,
/// unknown) lane sets.
#[inline]
fn ctl_masks(p: Planes4) -> (Mask4, Mask4, Mask4) {
    (known1(p), known0(p), p.u)
}

/// Evaluates one bytecode node against the current net and word-state
/// planes. Free function so settling can split borrows of the
/// simulator.
#[inline]
fn eval_op(p: &Program, nets: &[Planes4], words: &[[Planes4; 16]], i: usize) -> Planes4 {
    let base = p.arg_base[i] as usize;
    let args = &p.args[base..];
    let n = |k: usize| nets[args[k] as usize];
    match p.tags[i] {
        OpTag::Not => not_k(n(0)),
        OpTag::Buf => pess(n(0)),
        OpTag::And2 => and_k(n(0), n(1)),
        OpTag::And3 => and_k(and_k(n(0), n(1)), n(2)),
        OpTag::And4 => and_k(and_k(and_k(n(0), n(1)), n(2)), n(3)),
        OpTag::Or2 => or_k(n(0), n(1)),
        OpTag::Or3 => or_k(or_k(n(0), n(1)), n(2)),
        OpTag::Or4 => or_k(or_k(or_k(n(0), n(1)), n(2)), n(3)),
        OpTag::Nand2 => not_k(and_k(n(0), n(1))),
        OpTag::Nand3 => not_k(and_k(and_k(n(0), n(1)), n(2))),
        OpTag::Nand4 => not_k(and_k(and_k(and_k(n(0), n(1)), n(2)), n(3))),
        OpTag::Nor2 => not_k(or_k(n(0), n(1))),
        OpTag::Nor3 => not_k(or_k(or_k(n(0), n(1)), n(2))),
        OpTag::Nor4 => not_k(or_k(or_k(or_k(n(0), n(1)), n(2)), n(3))),
        OpTag::Xor2 => xor_k(n(0), n(1)),
        OpTag::Xor3 => xor_k(xor_k(n(0), n(1)), n(2)),
        OpTag::Xnor2 => not_k(xor_k(n(0), n(1))),
        // mux2 args are [i0, i1, sel].
        OpTag::Mux2 => mux_k(n(2), n(0), n(1)),
        // muxcy args are [ci, di, s]; s=1 selects the carry-in.
        OpTag::Muxcy => mux_k(n(2), n(1), n(0)),
        OpTag::Xorcy => xor_k(n(0), n(1)),
        OpTag::MultAnd => and_k(n(0), n(1)),
        OpTag::Lut1 => lut_k(1, p.lut_init[p.aux[i] as usize], nets, args),
        OpTag::Lut2 => lut_k(2, p.lut_init[p.aux[i] as usize], nets, args),
        OpTag::Lut3 => lut_k(3, p.lut_init[p.aux[i] as usize], nets, args),
        OpTag::Lut4 => lut_k(4, p.lut_init[p.aux[i] as usize], nets, args),
        OpTag::WordRead => {
            let addr = [n(0), n(1), n(2), n(3)];
            word_read_k(&addr, &words[p.aux[i] as usize])
        }
    }
}

/// A 256-lane compiled simulator: the bytecode counterpart of the
/// interpreted [`BatchSimulator`](crate::BatchSimulator), bit-exact
/// lane for lane (including `X`/`Z` propagation) while running the
/// flat program described in the [module docs](self).
///
/// The API mirrors `BatchSimulator` minus waveform recording; sweeps
/// that need traces use the interpreted engine.
#[derive(Debug, Clone)]
pub struct CompiledSimulator {
    program: Arc<Program>,
    lanes: usize,
    nets: Vec<Planes4>,
    /// 16-bit word states (SRL16/RAM16 contents), indexed by the
    /// program's word-state numbering.
    words: Vec<[Planes4; 16]>,
    /// Next-state scratch, parallel to `program.ffs`.
    ff_next: Vec<Planes4>,
    dirty: bool,
    cycle_count: u64,
}

impl CompiledSimulator {
    /// Compiles and lowers a circuit for `lanes`-wide execution,
    /// auto-detecting the clock (an input named `clk`, `c` or
    /// `clock`).
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`](crate::BatchSimulator::new),
    /// except lane counts up to [`COMPILED_MAX_LANES`] are accepted.
    pub fn new(circuit: &Circuit, lanes: usize) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, None, lanes)
    }

    /// Compiles a circuit with an explicit clock port.
    ///
    /// # Errors
    ///
    /// As for [`CompiledSimulator::new`].
    pub fn with_clock(circuit: &Circuit, clock_port: &str, lanes: usize) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, Some(clock_port), lanes)
    }

    /// Compiles an already-flattened design.
    ///
    /// # Errors
    ///
    /// As for [`CompiledSimulator::new`].
    pub fn from_flat(
        flat: &FlatNetlist,
        clock_port: Option<&str>,
        lanes: usize,
    ) -> Result<Self, SimError> {
        let compiled = compile(flat, clock_port)?;
        Self::from_program(Program::lower(&compiled), lanes)
    }

    /// Instantiates a simulator over an already-lowered program
    /// (shared, so sweep shards pay one plane-arena allocation each).
    pub(crate) fn from_program(program: Arc<Program>, lanes: usize) -> Result<Self, SimError> {
        if lanes == 0 || lanes > COMPILED_MAX_LANES {
            return Err(SimError::InvalidLanes { lanes });
        }
        let mut sim = CompiledSimulator {
            lanes,
            nets: vec![Planes4::splat(Logic::X); program.net_count],
            words: Vec::with_capacity(program.word_count()),
            ff_next: vec![Planes4::default(); program.ffs.len()],
            dirty: true,
            cycle_count: 0,
            program,
        };
        sim.power_on();
        Ok(sim)
    }

    /// Number of stimulus lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// `true` when the combinational network was fully levelized.
    #[must_use]
    pub fn is_levelized(&self) -> bool {
        self.program.levelized
    }

    /// Cycles simulated since power-on or the last reset.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycle_count
    }

    /// Names, directions and widths of the primary ports.
    #[must_use]
    pub fn ports(&self) -> Vec<(String, PortDir, u32)> {
        self.program
            .ports
            .iter()
            .map(|p| (p.name.clone(), p.dir, p.nets.len() as u32))
            .collect()
    }

    fn power_on(&mut self) {
        self.nets.fill(Planes4::splat(Logic::X));
        self.words.clear();
        for &init in &self.program.word_init {
            let mut word = [Planes4::default(); 16];
            for (i, bit) in word.iter_mut().enumerate() {
                *bit = Planes4::splat(Logic::from_bool((init >> i) & 1 == 1));
            }
            self.words.push(word);
        }
        for &(net, v) in &self.program.const_drives {
            self.nets[net.index()] = Planes4::splat(v);
        }
        for &net in &self.program.black_box_outputs {
            self.nets[net.index()] = Planes4::splat(Logic::X);
        }
        for (ff, &init) in self.program.ffs.iter().zip(&self.program.ff_init) {
            self.nets[ff.q as usize] = Planes4::splat(init);
        }
        for &net in &self.program.clock_nets {
            self.nets[net.index()] = Planes4::splat(Logic::Zero);
        }
        self.dirty = true;
    }

    /// Resets all sequential state to power-on values in every lane,
    /// keeping the current input assignments.
    pub fn reset(&mut self) {
        // Snapshot input-port planes so they survive power-on; the
        // nets of ports never driven hold X either way.
        let inputs: Vec<(usize, Vec<Planes4>)> = self
            .program
            .ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dir == PortDir::Input)
            .map(|(i, p)| (i, p.nets.iter().map(|n| self.nets[n.index()]).collect()))
            .collect();
        self.power_on();
        self.cycle_count = 0;
        for (port, planes) in inputs {
            for (&net, &value) in self.program.ports[port].nets.iter().zip(&planes) {
                self.nets[net.index()] = value;
            }
        }
        self.dirty = true;
    }

    fn port_index(&self, port: &str) -> Result<usize, SimError> {
        self.program
            .ports
            .iter()
            .position(|p| p.name == port)
            .ok_or_else(|| SimError::UnknownPort {
                port: port.to_owned(),
            })
    }

    fn check_lane(&self, lane: usize) -> Result<(), SimError> {
        if lane >= self.lanes {
            return Err(SimError::LaneOutOfRange {
                lane,
                lanes: self.lanes,
            });
        }
        Ok(())
    }

    /// Drives a primary input port in one lane.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports, non-inputs, width mismatches and lanes
    /// outside the configured count.
    pub fn set_lane(&mut self, port: &str, lane: usize, value: &LogicVec) -> Result<(), SimError> {
        self.check_lane(lane)?;
        let idx = self.port_index(port)?;
        let info = &self.program.ports[idx];
        if info.dir != PortDir::Input {
            return Err(SimError::NotAnInput {
                port: port.to_owned(),
            });
        }
        if info.nets.len() != value.width() {
            return Err(SimError::WidthMismatch {
                port: port.to_owned(),
                expected: info.nets.len() as u32,
                found: value.width() as u32,
            });
        }
        for (i, &net) in info.nets.iter().enumerate() {
            let cur = self.nets[net.index()];
            self.nets[net.index()] = cur.with_lane(lane, value.bit(i));
        }
        self.dirty = true;
        Ok(())
    }

    /// Drives a primary input port with the same value in every lane.
    ///
    /// # Errors
    ///
    /// As for [`CompiledSimulator::set_lane`].
    pub fn set_broadcast(&mut self, port: &str, value: &LogicVec) -> Result<(), SimError> {
        for lane in 0..self.lanes {
            self.set_lane(port, lane, value)?;
        }
        Ok(())
    }

    /// Drives a primary input port with one value per lane
    /// (`values.len()` must equal the lane count).
    ///
    /// # Errors
    ///
    /// As for [`CompiledSimulator::set_lane`], plus
    /// [`SimError::InvalidLanes`] when the slice length differs from
    /// the lane count.
    pub fn set_lanes(&mut self, port: &str, values: &[LogicVec]) -> Result<(), SimError> {
        if values.len() != self.lanes {
            return Err(SimError::InvalidLanes {
                lanes: values.len(),
            });
        }
        for (lane, value) in values.iter().enumerate() {
            self.set_lane(port, lane, value)?;
        }
        Ok(())
    }

    /// Convenience: drives one lane with an unsigned integer.
    ///
    /// # Errors
    ///
    /// As for [`CompiledSimulator::set_lane`].
    pub fn set_u64_lane(&mut self, port: &str, lane: usize, value: u64) -> Result<(), SimError> {
        let idx = self.port_index(port)?;
        let width = self.program.ports[idx].nets.len();
        self.set_lane(port, lane, &LogicVec::from_u64(value, width))
    }

    /// Convenience: drives one lane with a signed integer (two's
    /// complement).
    ///
    /// # Errors
    ///
    /// As for [`CompiledSimulator::set_lane`].
    pub fn set_i64_lane(&mut self, port: &str, lane: usize, value: i64) -> Result<(), SimError> {
        let idx = self.port_index(port)?;
        let width = self.program.ports[idx].nets.len();
        self.set_lane(port, lane, &LogicVec::from_i64(value, width))
    }

    /// Reads the current value of any primary port in one lane.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports, out-of-range lanes, or if settling
    /// oscillates.
    pub fn peek_lane(&mut self, port: &str, lane: usize) -> Result<LogicVec, SimError> {
        self.check_lane(lane)?;
        self.ensure_settled()?;
        let idx = self.port_index(port)?;
        Ok(self.program.ports[idx]
            .nets
            .iter()
            .map(|n| self.nets[n.index()].lane(lane))
            .collect())
    }

    /// Reads a primary port across all lanes (one `LogicVec` per
    /// lane).
    ///
    /// # Errors
    ///
    /// As for [`CompiledSimulator::peek_lane`].
    pub fn peek_lanes(&mut self, port: &str) -> Result<Vec<LogicVec>, SimError> {
        self.ensure_settled()?;
        let idx = self.port_index(port)?;
        let nets = &self.program.ports[idx].nets;
        Ok((0..self.lanes)
            .map(|lane| {
                nets.iter()
                    .map(|n| self.nets[n.index()].lane(lane))
                    .collect()
            })
            .collect())
    }

    /// Reads one internal net by hierarchical name in one lane.
    ///
    /// # Errors
    ///
    /// Fails for unknown nets, out-of-range lanes, or if settling
    /// oscillates.
    pub fn peek_net_lane(&mut self, net: &str, lane: usize) -> Result<Logic, SimError> {
        self.check_lane(lane)?;
        self.ensure_settled()?;
        let id =
            self.program
                .name_to_net
                .get(net)
                .copied()
                .ok_or_else(|| SimError::UnknownNet {
                    net: net.to_owned(),
                })?;
        Ok(self.nets[id.index()].lane(lane))
    }

    /// Reads a flip-flop's current state by instance path in one lane.
    #[must_use]
    pub fn ff_state_lane(&self, instance_path: &str, lane: usize) -> Option<Logic> {
        if lane >= self.lanes {
            return None;
        }
        let idx = self
            .program
            .state_paths
            .iter()
            .position(|p| p == instance_path)?;
        match self.program.state_slots[idx] {
            StateSlot::Ff(i) => Some(self.nets[self.program.ffs[i as usize].q as usize].lane(lane)),
            StateSlot::Word(_) => None,
        }
    }

    /// Reads the 16-bit contents of a shift register or RAM by
    /// instance path in one lane.
    #[must_use]
    pub fn memory_lane(&self, instance_path: &str, lane: usize) -> Option<LogicVec> {
        if lane >= self.lanes {
            return None;
        }
        let idx = self
            .program
            .state_paths
            .iter()
            .position(|p| p == instance_path)?;
        match self.program.state_slots[idx] {
            StateSlot::Word(w) => Some(
                self.words[w as usize]
                    .iter()
                    .map(|p| p.lane(lane))
                    .collect(),
            ),
            StateSlot::Ff(_) => None,
        }
    }

    /// Forces a flip-flop's current state by instance path in one
    /// lane (counterexample-replay back door; see
    /// [`BatchSimulator::set_ff_lane`](crate::BatchSimulator::set_ff_lane)).
    /// Returns `false` for unknown paths, word-state elements, or
    /// out-of-range lanes.
    pub fn set_ff_lane(&mut self, instance_path: &str, lane: usize, value: Logic) -> bool {
        if lane >= self.lanes {
            return false;
        }
        let Some(idx) = self
            .program
            .state_paths
            .iter()
            .position(|p| p == instance_path)
        else {
            return false;
        };
        let StateSlot::Ff(i) = self.program.state_slots[idx] else {
            return false;
        };
        let q = self.program.ffs[i as usize].q as usize;
        self.nets[q] = self.nets[q].with_lane(lane, value);
        self.dirty = true;
        true
    }

    /// Forces the 16-bit contents of a shift register or RAM by
    /// instance path in one lane (counterexample-replay back door).
    /// Returns `false` for unknown paths, bit-state elements,
    /// out-of-range lanes, or a `value` that is not 16 bits wide.
    pub fn set_memory_lane(&mut self, instance_path: &str, lane: usize, value: &LogicVec) -> bool {
        if lane >= self.lanes || value.width() != 16 {
            return false;
        }
        let Some(idx) = self
            .program
            .state_paths
            .iter()
            .position(|p| p == instance_path)
        else {
            return false;
        };
        let StateSlot::Word(w) = self.program.state_slots[idx] else {
            return false;
        };
        let word = &mut self.words[w as usize];
        for (i, bit) in word.iter_mut().enumerate() {
            *bit = bit.with_lane(lane, value.bit(i));
        }
        self.dirty = true;
        true
    }

    /// Lists the instance paths of all stateful elements.
    #[must_use]
    pub fn state_elements(&self) -> &[String] {
        &self.program.state_paths
    }

    /// Advances the global clock by `n` cycles in every lane.
    ///
    /// # Errors
    ///
    /// Fails if combinational settling oscillates.
    pub fn cycle(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.one_cycle()?;
        }
        Ok(())
    }

    fn one_cycle(&mut self) -> Result<(), SimError> {
        self.ensure_settled()?;
        let p = Arc::clone(&self.program);

        // 1. Next flip-flop states into scratch, reading only pre-edge
        //    nets (q planes still hold the old state).
        for (k, ff) in p.ffs.iter().enumerate() {
            let cur = self.nets[ff.q as usize];
            let d = self.nets[ff.d as usize];
            let (ce1, ce0, ceu) = if ff.ce == NO_NET {
                ([!0u64; WORDS], [0u64; WORDS], [0u64; WORDS])
            } else {
                ctl_masks(self.nets[ff.ce as usize])
            };
            let mut next = Planes4::default();
            for w in 0..WORDS {
                next.v[w] = (ce1[w] & d.v[w]) | (ce0[w] & cur.v[w]);
                next.u[w] = (ce1[w] & d.u[w]) | (ce0[w] & cur.u[w]) | ceu[w];
            }
            if ff.ctl != NO_NET {
                // One clears, zero keeps, unknown poisons — identical
                // for async clear and sync reset at cycle granularity.
                let (_c1, c0, cu) = ctl_masks(self.nets[ff.ctl as usize]);
                for w in 0..WORDS {
                    next.v[w] &= c0[w];
                    next.u[w] = (next.u[w] & c0[w]) | cu[w];
                }
            }
            self.ff_next[k] = next;
        }

        // 2. Shift registers in place, taps high-to-low so each tap
        //    still reads its predecessor's pre-edge value.
        for srl in &p.srls {
            let d = self.nets[srl.d as usize];
            let (ce1, ce0, ceu) = ctl_masks(self.nets[srl.ce as usize]);
            let word = &mut self.words[srl.word as usize];
            for i in (0..16).rev() {
                let src = if i == 0 { d } else { word[i - 1] };
                for w in 0..WORDS {
                    word[i].v[w] = (ce1[w] & src.v[w]) | (ce0[w] & word[i].v[w]);
                    word[i].u[w] = (ce1[w] & src.u[w]) | (ce0[w] & word[i].u[w]) | ceu[w];
                }
            }
        }

        // 3. RAM writes in place (each bit only reads itself).
        for ram in &p.rams {
            let d = self.nets[ram.d as usize];
            let (we1, we0, weu) = ctl_masks(self.nets[ram.we as usize]);
            let addr = [
                self.nets[ram.addr[0] as usize],
                self.nets[ram.addr[1] as usize],
                self.nets[ram.addr[2] as usize],
                self.nets[ram.addr[3] as usize],
            ];
            let mut addr_unk = [0u64; WORDS];
            for a in &addr {
                for (uw, &au) in addr_unk.iter_mut().zip(&a.u) {
                    *uw |= au;
                }
            }
            // A write with any unknown address bit poisons the whole
            // word, as does an unknown write-enable.
            let mut xmask = [0u64; WORDS];
            for w in 0..WORDS {
                xmask[w] = weu[w] | (we1[w] & addr_unk[w]);
            }
            let word = &mut self.words[ram.word as usize];
            for (idx, slot) in word.iter_mut().enumerate() {
                let mut sel = [!0u64; WORDS];
                for (i, a) in addr.iter().enumerate() {
                    let k = if (idx >> i) & 1 == 1 {
                        known1(*a)
                    } else {
                        known0(*a)
                    };
                    for w in 0..WORDS {
                        sel[w] &= k[w];
                    }
                }
                for w in 0..WORDS {
                    let write = we1[w] & sel[w];
                    let hold = we0[w] | (we1[w] & !addr_unk[w] & !sel[w]);
                    slot.v[w] = (write & d.v[w]) | (hold & slot.v[w]);
                    slot.u[w] = (write & d.u[w]) | (hold & slot.u[w]) | xmask[w];
                }
            }
        }

        // 4. Commit flip-flop states to their q planes.
        for (k, ff) in p.ffs.iter().enumerate() {
            self.nets[ff.q as usize] = self.ff_next[k];
        }

        self.dirty = true;
        self.ensure_settled()?;
        self.cycle_count += 1;
        Ok(())
    }

    fn lane_mask(&self) -> Mask4 {
        std::array::from_fn(|w| {
            let lo = w * 64;
            if self.lanes >= lo + 64 {
                !0
            } else if self.lanes <= lo {
                0
            } else {
                (1u64 << (self.lanes - lo)) - 1
            }
        })
    }

    fn ensure_settled(&mut self) -> Result<(), SimError> {
        if !self.dirty {
            return Ok(());
        }
        let p = Arc::clone(&self.program);
        // The acyclic prefix settles in one pass (its nodes depend
        // only on earlier prefix nodes, inputs, constants and state).
        for i in 0..p.acyclic_prefix {
            let value = eval_op(&p, &self.nets, &self.words, i);
            self.nets[p.outs[i] as usize] = value;
        }
        if !p.levelized {
            // Iterate only the cyclic remainder to a fixpoint, with
            // the interpreter's pass budget.
            let mask = self.lane_mask();
            let limit = 2 * p.tags.len() + 8;
            let mut pass = 0;
            loop {
                let mut changed_net: Option<u32> = None;
                for i in p.acyclic_prefix..p.tags.len() {
                    let value = eval_op(&p, &self.nets, &self.words, i);
                    let out = p.outs[i] as usize;
                    let old = self.nets[out];
                    let mut changed = 0u64;
                    for (w, &m) in mask.iter().enumerate() {
                        changed |= ((old.v[w] ^ value.v[w]) | (old.u[w] ^ value.u[w])) & m;
                    }
                    if changed != 0 {
                        self.nets[out] = value;
                        changed_net = Some(p.outs[i]);
                    }
                }
                match changed_net {
                    None => break,
                    Some(net) => {
                        pass += 1;
                        if pass > limit {
                            return Err(SimError::Oscillation {
                                net: p.net_names[net as usize].clone(),
                            });
                        }
                    }
                }
            }
        }
        self.dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{self, Planes};

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// Mirrors a 64-lane plane pair into word `w` of a `Planes4`.
    fn widen(p: Planes, w: usize) -> Planes4 {
        let mut r = Planes4::default();
        r.v[w] = p.v;
        r.u[w] = p.u;
        r
    }

    /// Every binary kernel must equal the proven 64-lane kernel
    /// word-for-word, for all four-state combinations in every word.
    #[test]
    fn binary_kernels_match_interpreted_planes() {
        let mut a64 = Planes::default();
        let mut b64 = Planes::default();
        for (lane, (x, y)) in ALL
            .iter()
            .flat_map(|x| ALL.iter().map(move |y| (*x, *y)))
            .enumerate()
        {
            a64 = a64.with_lane(lane, x);
            b64 = b64.with_lane(lane, y);
        }
        for w in 0..WORDS {
            let a = widen(a64, w);
            let b = widen(b64, w);
            assert_eq!(and_k(a, b).v[w], batch::and_k(a64, b64).v);
            assert_eq!(and_k(a, b).u[w], batch::and_k(a64, b64).u);
            assert_eq!(or_k(a, b).v[w], batch::or_k(a64, b64).v);
            assert_eq!(or_k(a, b).u[w], batch::or_k(a64, b64).u);
            assert_eq!(xor_k(a, b).v[w], batch::xor_k(a64, b64).v);
            assert_eq!(xor_k(a, b).u[w], batch::xor_k(a64, b64).u);
            assert_eq!(not_k(a).v[w], batch::not_k(a64).v);
            assert_eq!(not_k(a).u[w], batch::not_k(a64).u);
            assert_eq!(pess(a).v[w], batch::pess(a64).v);
            assert_eq!(pess(a).u[w], batch::pess(a64).u);
        }
    }

    #[test]
    fn mux_kernel_matches_interpreted_planes() {
        // All 64 (sel, d0, d1) four-state combinations fit one plane.
        let mut sel64 = Planes::default();
        let mut d064 = Planes::default();
        let mut d164 = Planes::default();
        let mut lane = 0;
        for s in ALL {
            for x in ALL {
                for y in ALL {
                    sel64 = sel64.with_lane(lane, s);
                    d064 = d064.with_lane(lane, x);
                    d164 = d164.with_lane(lane, y);
                    lane += 1;
                }
            }
        }
        let expect = batch::mux_k(sel64, d064, d164);
        for w in 0..WORDS {
            let got = mux_k(widen(sel64, w), widen(d064, w), widen(d164, w));
            assert_eq!(got.v[w], expect.v);
            assert_eq!(got.u[w], expect.u);
        }
    }

    #[test]
    fn lut_fold_matches_recursive_expansion() {
        // The iterative fold must equal the interpreter's recursive
        // Shannon expansion for every arity and a spread of tables.
        for n in 1..=4usize {
            for init in [0u16, 0xFFFF, 0x6996, 0xAAAA, 0xCAFE, 0x8001, 0x1234] {
                let mask = if n == 4 {
                    0xFFFF
                } else {
                    (1u16 << (1 << n)) - 1
                };
                let init = init & mask;
                // Pack a rolling window of four-state values per input.
                let ins64: Vec<Planes> = (0..n)
                    .map(|i| {
                        let mut p = Planes::default();
                        for lane in 0..64 {
                            p = p.with_lane(lane, ALL[(lane >> i) % 4]);
                        }
                        p
                    })
                    .collect();
                let expect = batch::lut_k(n, init, &ins64);
                for w in 0..WORDS {
                    let nets: Vec<Planes4> = ins64.iter().map(|&p| widen(p, w)).collect();
                    let args: Vec<u32> = (0..n as u32).collect();
                    let got = lut_k(n, init, &nets, &args);
                    assert_eq!(got.v[w], expect.v, "lut{n} init {init:#06x} word {w}");
                    assert_eq!(got.u[w], expect.u, "lut{n} init {init:#06x} word {w}");
                }
            }
        }
    }

    #[test]
    fn word_read_matches_interpreted_planes() {
        let mut word64 = [Planes::splat(Logic::Zero); 16];
        word64[5] = Planes::splat(Logic::One);
        word64[9] = Planes::splat(Logic::X);
        let mut addr64 = [Planes::default(); 4];
        for (i, a) in addr64.iter_mut().enumerate() {
            for lane in 0..64 {
                *a = a.with_lane(lane, ALL[(lane >> i) % 4]);
            }
        }
        let expect = batch::word_read_k(&addr64, &word64);
        for w in 0..WORDS {
            let addr: [Planes4; 4] = std::array::from_fn(|i| widen(addr64[i], w));
            let word: [Planes4; 16] = std::array::from_fn(|i| widen(word64[i], w));
            let got = word_read_k(&addr, &word);
            assert_eq!(got.v[w], expect.v);
            assert_eq!(got.u[w], expect.u);
        }
    }

    #[test]
    fn planes4_lane_round_trip() {
        for l in ALL {
            assert_eq!(Planes4::splat(l).lane(17), l);
            assert_eq!(Planes4::splat(l).lane(200), l);
            let p = Planes4::splat(Logic::Zero).with_lane(130, l);
            assert_eq!(p.lane(130), l);
            assert_eq!(p.lane(129), Logic::Zero);
            assert_eq!(p.lane(2), Logic::Zero);
        }
    }

    #[test]
    fn invalid_lane_counts_are_rejected() {
        let circuit = Circuit::new("empty");
        assert!(matches!(
            CompiledSimulator::new(&circuit, 0),
            Err(SimError::InvalidLanes { lanes: 0 })
        ));
        assert!(matches!(
            CompiledSimulator::new(&circuit, 257),
            Err(SimError::InvalidLanes { lanes: 257 })
        ));
        assert!(CompiledSimulator::new(&circuit, 256).is_ok());
    }
}
