//! Public cone/levelization helpers over a flattened netlist.
//!
//! The simulator's compile step already does the hard structural work
//! every netlist-level analysis needs: clock-net discovery through
//! buffer trees, single-driver checking, separation of combinational
//! evaluation nodes from sequential updates, and Kahn levelization of
//! the combinational network. This module exposes that result as a
//! standalone data structure so other engines — notably the
//! `ipd-verify` formal equivalence checker — share the exact same
//! levelizer (and therefore the exact same structural interpretation
//! of a design) as the three simulation backends.

use ipd_hdl::{FlatNetlist, Logic, NetId, PortDir};
use ipd_techlib::{FfControl, PrimKind};

use crate::compile::{compile, EvalFunc, SeqUpdate};
use crate::error::SimError;

/// How one combinational node computes its output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombKind {
    /// A combinational primitive (inputs in port-declaration order).
    Prim(PrimKind),
    /// Asynchronous tap read of shift register `seq` (inputs are the
    /// four address nets, LSB first).
    SrlRead {
        /// Index into [`NetlistGraph::seq`].
        seq: usize,
    },
    /// Asynchronous word read of RAM `seq` (inputs are the four
    /// address nets, LSB first).
    RamRead {
        /// Index into [`NetlistGraph::seq`].
        seq: usize,
    },
}

/// One node of the combinational evaluation network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombEval {
    /// What the node computes.
    pub kind: CombKind,
    /// Input nets in evaluation order.
    pub inputs: Vec<NetId>,
    /// The single driven output net.
    pub output: NetId,
}

/// The clock-edge behaviour of one sequential element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqKind {
    /// Edge-triggered flip-flop.
    Ff {
        /// Data input net.
        d: NetId,
        /// Clock-enable net, when the primitive has one.
        ce: Option<NetId>,
        /// Clear/reset control. At cycle granularity async clear and
        /// sync reset behave identically: control high forces 0.
        control: Option<(FfControl, NetId)>,
        /// Power-on value.
        init: Logic,
        /// The output net the state drives.
        q: NetId,
    },
    /// 16-bit shift register (tap reads appear as [`CombKind::SrlRead`]
    /// nodes).
    Srl16 {
        /// Data input net.
        d: NetId,
        /// Clock-enable net.
        ce: NetId,
        /// Power-on contents.
        init: u16,
    },
    /// 16×1 RAM with synchronous write (reads appear as
    /// [`CombKind::RamRead`] nodes).
    Ram16 {
        /// Data input net.
        d: NetId,
        /// Write-enable net.
        we: NetId,
        /// Write address nets, LSB first.
        addr: [NetId; 4],
        /// Power-on contents.
        init: u16,
    },
}

impl SeqKind {
    /// Number of state bits this element holds (1 for a flip-flop,
    /// 16 for shift registers and RAMs).
    #[must_use]
    pub fn state_bits(&self) -> usize {
        match self {
            SeqKind::Ff { .. } => 1,
            SeqKind::Srl16 { .. } | SeqKind::Ram16 { .. } => 16,
        }
    }
}

/// One sequential element with its hierarchical instance path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqElem {
    /// Full hierarchical instance path (stable across engines; the
    /// same string the simulators' `state_elements` report).
    pub path: String,
    /// Edge behaviour.
    pub kind: SeqKind,
}

/// A primary port with its resolved bit nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortNets {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Net per bit, LSB first.
    pub nets: Vec<NetId>,
}

/// The levelized structural view of a flattened design: the exact
/// graph all three simulation engines execute, exposed for static
/// analyses that must agree with them.
#[derive(Debug, Clone)]
pub struct NetlistGraph {
    /// Number of single-bit nets.
    pub net_count: usize,
    /// Net names, indexed by [`NetId::index`].
    pub net_names: Vec<String>,
    /// Combinational nodes. The first [`NetlistGraph::acyclic_prefix`]
    /// entries are in topological (levelized) order; any remainder
    /// belongs to combinational cycles.
    pub eval_order: Vec<CombEval>,
    /// Length of the topologically sorted acyclic prefix of
    /// `eval_order`; equal to `eval_order.len()` iff the design is
    /// loop-free.
    pub acyclic_prefix: usize,
    /// Sequential elements in leaf order.
    pub seq: Vec<SeqElem>,
    /// Constant-driven nets (GND/VCC rails).
    pub const_drives: Vec<(NetId, Logic)>,
    /// Nets driven by protected black boxes (simulate as `X`).
    pub black_box_outputs: Vec<NetId>,
    /// Primary ports with resolved bit nets.
    pub ports: Vec<PortNets>,
    /// Nets carrying the global clock (the clock port plus everything
    /// reached through clock buffers).
    pub clock_nets: Vec<NetId>,
}

impl NetlistGraph {
    /// Builds the graph for a flattened design. `clock_port` selects
    /// the global clock input; when `None` an input named `clk`, `c`
    /// or `clock` is auto-detected (sequential-free designs need no
    /// clock at all).
    ///
    /// # Errors
    ///
    /// As for simulator construction: inout ports, unknown
    /// primitives, multiple drivers and gated clocks are rejected.
    pub fn build(flat: &FlatNetlist, clock_port: Option<&str>) -> Result<Self, SimError> {
        let compiled = compile(flat, clock_port)?;
        // Join SRL/RAM read nodes to their sequential element: compile
        // numbers both through the same state index.
        let eval_order = compiled
            .eval_order
            .iter()
            .map(|n| CombEval {
                kind: match n.func {
                    EvalFunc::Prim(kind) => CombKind::Prim(kind),
                    EvalFunc::SrlRead { state } => CombKind::SrlRead { seq: state },
                    EvalFunc::RamRead { state } => CombKind::RamRead { seq: state },
                },
                inputs: n.inputs.clone(),
                output: n.output,
            })
            .collect();
        let seq = compiled
            .seq
            .iter()
            .map(|u| {
                let (state, kind) = match u {
                    SeqUpdate::Ff {
                        state,
                        d,
                        ce,
                        control,
                        init,
                        q,
                    } => (
                        *state,
                        SeqKind::Ff {
                            d: *d,
                            ce: *ce,
                            control: *control,
                            init: *init,
                            q: *q,
                        },
                    ),
                    SeqUpdate::Srl16 { state, d, ce, init } => (
                        *state,
                        SeqKind::Srl16 {
                            d: *d,
                            ce: *ce,
                            init: *init,
                        },
                    ),
                    SeqUpdate::Ram16 {
                        state,
                        d,
                        we,
                        addr,
                        init,
                    } => (
                        *state,
                        SeqKind::Ram16 {
                            d: *d,
                            we: *we,
                            addr: *addr,
                            init: *init,
                        },
                    ),
                };
                SeqElem {
                    path: compiled.state_paths[state].clone(),
                    kind,
                }
            })
            .collect();
        let ports = compiled
            .ports
            .iter()
            .map(|p| PortNets {
                name: p.name.clone(),
                dir: p.dir,
                nets: p.nets.clone(),
            })
            .collect();
        Ok(NetlistGraph {
            net_count: compiled.net_count,
            net_names: compiled.net_names.clone(),
            eval_order,
            acyclic_prefix: compiled.acyclic_prefix,
            seq,
            const_drives: compiled.const_drives.clone(),
            black_box_outputs: compiled.black_box_outputs.clone(),
            ports,
            clock_nets: compiled.clock_nets.clone(),
        })
    }

    /// `true` when the combinational network is loop-free (every node
    /// sits in the topologically sorted prefix).
    #[must_use]
    pub fn levelized(&self) -> bool {
        self.acyclic_prefix == self.eval_order.len()
    }

    /// `true` when `net` carries the global clock.
    #[must_use]
    pub fn is_clock_net(&self, net: NetId) -> bool {
        self.clock_nets.contains(&net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{Circuit, PortSpec, Signal};
    use ipd_techlib::LogicCtx;

    fn pipeline() -> Circuit {
        let mut c = Circuit::new("pipe");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 2)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        let w = ctx.wire("w", 1);
        ctx.xor2(Signal::bit_of(a, 0), Signal::bit_of(a, 1), w)
            .unwrap();
        ctx.fd(clk, w, y).unwrap();
        c
    }

    #[test]
    fn graph_is_levelized_and_names_state() {
        let flat = FlatNetlist::build(&pipeline()).unwrap();
        let g = NetlistGraph::build(&flat, None).unwrap();
        assert!(g.levelized());
        assert_eq!(g.eval_order.len(), 1, "one xor node");
        assert_eq!(g.seq.len(), 1);
        assert!(matches!(g.seq[0].kind, SeqKind::Ff { .. }));
        assert_eq!(g.seq[0].kind.state_bits(), 1);
        assert_eq!(g.ports.len(), 3);
        assert_eq!(g.clock_nets.len(), 1);
        assert!(g.is_clock_net(g.clock_nets[0]));
    }

    #[test]
    fn srl_read_joins_to_its_element() {
        let mut c = Circuit::new("srl");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let ce = ctx.add_port(PortSpec::input("ce", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        ctx.srl16(0x5a5a, clk, ce, d, a, q).unwrap();
        let flat = FlatNetlist::build(&c).unwrap();
        let g = NetlistGraph::build(&flat, None).unwrap();
        let read = g
            .eval_order
            .iter()
            .find(|n| matches!(n.kind, CombKind::SrlRead { .. }))
            .expect("tap read node");
        let CombKind::SrlRead { seq } = read.kind else {
            unreachable!()
        };
        assert!(matches!(
            g.seq[seq].kind,
            SeqKind::Srl16 { init: 0x5a5a, .. }
        ));
        assert_eq!(read.inputs.len(), 4, "address nets");
    }
}
