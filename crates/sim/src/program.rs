//! Lowering of a compiled netlist into flat, cache-friendly bytecode.
//!
//! The interpreted engines walk `Vec<EvalNode>` — every node carries a
//! heap-allocated `Vec<NetId>` of inputs and a `PrimKind` enum that the
//! hot loop re-dispatches on, including a *recursive* Shannon
//! expansion per LUT evaluation. A [`Program`] removes all of that:
//!
//! - **Struct-of-arrays node storage.** One contiguous array per field
//!   (`tags`, `outs`, `arg_base`, `aux`), with every node's input
//!   plane indices pre-resolved into one flat `args: Vec<u32>` arena.
//!   The executor's inner loop walks parallel arrays with
//!   branch-predictable tag dispatch and touches no `HashMap`, no
//!   `Vec<NetId>`, and no string.
//! - **LUT truth tables in one contiguous array.** Each `LutN` node's
//!   `aux` indexes `lut_init`; evaluation is an iterative bottom-up
//!   mux tree (bit-exact with the interpreter's recursive cofactor
//!   analysis, which computes the same operation tree).
//! - **Pre-split sequential programs.** Flip-flops, SRL16s and RAM16s
//!   are lowered into separate flat op lists with resolved net and
//!   state-slot indices, so the clock-edge loop is three tight passes
//!   instead of an enum match per element.
//!
//! A `Program` is immutable after lowering and shared between sweep
//! shards behind an `Arc`, so spawning a shard costs one plane-arena
//! allocation instead of a deep clone of names and node vectors.

use std::collections::HashMap;
use std::sync::Arc;

use ipd_hdl::{Logic, NetId};
use ipd_techlib::PrimKind;

use crate::compile::{Compiled, EvalFunc, PortInfo, SeqUpdate};

/// Sentinel for "no net" in optional operand slots (clock enables,
/// reset controls).
pub(crate) const NO_NET: u32 = u32::MAX;

/// Bytecode operation tags. Arity is implied by the tag, so dispatch
/// is a single jump with no per-node argument-count load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum OpTag {
    /// Four-state NOT.
    Not,
    /// Buffer pessimism (`X`/`Z` → `X`).
    Buf,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 4-input OR.
    Or4,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 4-input NOR.
    Nor4,
    /// 2-input XOR.
    Xor2,
    /// 3-input XOR.
    Xor3,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 mux, args `[i0, i1, sel]`.
    Mux2,
    /// Carry mux, args `[ci, di, s]`; `s=1` selects the carry-in.
    Muxcy,
    /// Carry XOR.
    Xorcy,
    /// Multiplier AND.
    MultAnd,
    /// 1-input LUT; `aux` indexes `lut_init`.
    Lut1,
    /// 2-input LUT; `aux` indexes `lut_init`.
    Lut2,
    /// 3-input LUT; `aux` indexes `lut_init`.
    Lut3,
    /// 4-input LUT (also ROM16x1); `aux` indexes `lut_init`.
    Lut4,
    /// Asynchronous 16×1 word read (SRL tap / RAM read), args are the
    /// 4 address bits LSB-first; `aux` is the word-state index.
    WordRead,
}

/// One lowered flip-flop update.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FfOp {
    /// Data input plane index.
    pub d: u32,
    /// Clock-enable plane index, or [`NO_NET`].
    pub ce: u32,
    /// Clear/reset plane index, or [`NO_NET`]. Async clear and sync
    /// reset behave identically at cycle granularity.
    pub ctl: u32,
    /// Output (q) plane index — doubles as the state storage.
    pub q: u32,
}

/// One lowered shift-register update.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SrlOp {
    /// Word-state index.
    pub word: u32,
    /// Data input plane index.
    pub d: u32,
    /// Clock-enable plane index.
    pub ce: u32,
}

/// One lowered RAM write.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RamOp {
    /// Word-state index.
    pub word: u32,
    /// Data input plane index.
    pub d: u32,
    /// Write-enable plane index.
    pub we: u32,
    /// Address plane indices, LSB-first.
    pub addr: [u32; 4],
}

/// Where a compile-time state index lives in the executor: flip-flop
/// states are stored in their q net's plane, words in the word arena.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StateSlot {
    /// Index into [`Program::ffs`].
    Ff(u32),
    /// Index into the word-state arena.
    Word(u32),
}

/// A lowered, immutable simulation program. See the module docs for
/// the layout rationale.
#[derive(Debug)]
pub(crate) struct Program {
    pub net_count: usize,
    pub levelized: bool,
    /// Nodes `[0, acyclic_prefix)` settle in one pass; the remainder
    /// (empty when levelized) needs fixpoint iteration.
    pub acyclic_prefix: usize,

    // Struct-of-arrays combinational node storage, in evaluation
    // order. All vectors below are parallel (indexed by node).
    pub tags: Vec<OpTag>,
    pub outs: Vec<u32>,
    pub arg_base: Vec<u32>,
    pub aux: Vec<u32>,
    /// Flat operand arena: every node's input plane indices.
    pub args: Vec<u32>,
    /// Contiguous LUT/ROM truth tables, indexed by `aux`.
    pub lut_init: Vec<u16>,

    // Sequential programs.
    pub ffs: Vec<FfOp>,
    /// Power-on value per flip-flop, parallel to `ffs`.
    pub ff_init: Vec<Logic>,
    pub srls: Vec<SrlOp>,
    pub rams: Vec<RamOp>,
    /// Power-on contents per word state.
    pub word_init: Vec<u16>,
    /// Compile-time state index → executor storage slot, parallel to
    /// `state_paths`.
    pub state_slots: Vec<StateSlot>,
    pub state_paths: Vec<String>,

    // Metadata retained for the simulator API.
    pub net_names: Vec<String>,
    pub name_to_net: HashMap<String, NetId>,
    pub ports: Vec<PortInfo>,
    pub const_drives: Vec<(NetId, Logic)>,
    pub black_box_outputs: Vec<NetId>,
    pub clock_nets: Vec<NetId>,
}

impl Program {
    /// Lowers a compiled netlist into bytecode, sharing nothing with
    /// the source (`compiled` stays usable for the interpreted
    /// engines).
    pub(crate) fn lower(compiled: &Compiled) -> Arc<Program> {
        // Sequential programs first: word reads in the combinational
        // network reference word-state indices assigned here.
        let mut ffs = Vec::new();
        let mut ff_init = Vec::new();
        let mut srls = Vec::new();
        let mut rams = Vec::new();
        let mut word_init = Vec::new();
        let mut state_slots = Vec::with_capacity(compiled.seq.len());
        for update in &compiled.seq {
            match update {
                SeqUpdate::Ff {
                    d,
                    ce,
                    control,
                    init,
                    q,
                    ..
                } => {
                    state_slots.push(StateSlot::Ff(ffs.len() as u32));
                    ffs.push(FfOp {
                        d: d.index() as u32,
                        ce: ce.map_or(NO_NET, |n| n.index() as u32),
                        ctl: control.map_or(NO_NET, |(_, n)| n.index() as u32),
                        q: q.index() as u32,
                    });
                    ff_init.push(*init);
                }
                SeqUpdate::Srl16 { d, ce, init, .. } => {
                    let word = word_init.len() as u32;
                    state_slots.push(StateSlot::Word(word));
                    word_init.push(*init);
                    srls.push(SrlOp {
                        word,
                        d: d.index() as u32,
                        ce: ce.index() as u32,
                    });
                }
                SeqUpdate::Ram16 {
                    d, we, addr, init, ..
                } => {
                    let word = word_init.len() as u32;
                    state_slots.push(StateSlot::Word(word));
                    word_init.push(*init);
                    rams.push(RamOp {
                        word,
                        d: d.index() as u32,
                        we: we.index() as u32,
                        addr: [
                            addr[0].index() as u32,
                            addr[1].index() as u32,
                            addr[2].index() as u32,
                            addr[3].index() as u32,
                        ],
                    });
                }
            }
        }

        // Combinational bytecode.
        let n = compiled.eval_order.len();
        let mut tags = Vec::with_capacity(n);
        let mut outs = Vec::with_capacity(n);
        let mut arg_base = Vec::with_capacity(n);
        let mut aux = Vec::with_capacity(n);
        let mut args = Vec::new();
        let mut lut_init = Vec::new();
        for node in &compiled.eval_order {
            let (tag, node_aux) = match &node.func {
                EvalFunc::Prim(kind) => lower_prim(kind, &mut lut_init),
                EvalFunc::SrlRead { state } | EvalFunc::RamRead { state } => {
                    let StateSlot::Word(word) = state_slots[*state] else {
                        unreachable!("word reads target word states")
                    };
                    (OpTag::WordRead, word)
                }
            };
            tags.push(tag);
            outs.push(node.output.index() as u32);
            arg_base.push(args.len() as u32);
            aux.push(node_aux);
            args.extend(node.inputs.iter().map(|n| n.index() as u32));
            debug_assert_eq!(
                args.len() - *arg_base.last().expect("just pushed") as usize,
                tag.arity(),
                "node arity matches its tag"
            );
        }

        Arc::new(Program {
            net_count: compiled.net_count,
            levelized: compiled.levelized,
            acyclic_prefix: compiled.acyclic_prefix,
            tags,
            outs,
            arg_base,
            aux,
            args,
            lut_init,
            ffs,
            ff_init,
            srls,
            rams,
            word_init,
            state_slots,
            state_paths: compiled.state_paths.clone(),
            net_names: compiled.net_names.clone(),
            name_to_net: compiled.name_to_net.clone(),
            ports: compiled.ports.clone(),
            const_drives: compiled.const_drives.clone(),
            black_box_outputs: compiled.black_box_outputs.clone(),
            clock_nets: compiled.clock_nets.clone(),
        })
    }

    /// Number of word states (SRL16 + RAM16).
    pub(crate) fn word_count(&self) -> usize {
        self.word_init.len()
    }
}

impl OpTag {
    /// Number of operand slots this tag consumes from the arena.
    pub(crate) fn arity(self) -> usize {
        match self {
            OpTag::Not | OpTag::Buf | OpTag::Lut1 => 1,
            OpTag::And2
            | OpTag::Or2
            | OpTag::Nand2
            | OpTag::Nor2
            | OpTag::Xor2
            | OpTag::Xnor2
            | OpTag::Xorcy
            | OpTag::MultAnd
            | OpTag::Lut2 => 2,
            OpTag::And3
            | OpTag::Or3
            | OpTag::Nand3
            | OpTag::Nor3
            | OpTag::Xor3
            | OpTag::Mux2
            | OpTag::Muxcy
            | OpTag::Lut3 => 3,
            OpTag::And4
            | OpTag::Or4
            | OpTag::Nand4
            | OpTag::Nor4
            | OpTag::Lut4
            | OpTag::WordRead => 4,
        }
    }
}

/// Maps a combinational primitive to its tag, interning LUT truth
/// tables into the contiguous `lut_init` array.
fn lower_prim(kind: &PrimKind, lut_init: &mut Vec<u16>) -> (OpTag, u32) {
    let mut lut = |init: u16| {
        let idx = lut_init.len() as u32;
        lut_init.push(init);
        idx
    };
    match kind {
        PrimKind::Inv => (OpTag::Not, 0),
        PrimKind::Buf | PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => (OpTag::Buf, 0),
        PrimKind::And(2) => (OpTag::And2, 0),
        PrimKind::And(3) => (OpTag::And3, 0),
        PrimKind::And(_) => (OpTag::And4, 0),
        PrimKind::Or(2) => (OpTag::Or2, 0),
        PrimKind::Or(3) => (OpTag::Or3, 0),
        PrimKind::Or(_) => (OpTag::Or4, 0),
        PrimKind::Nand(2) => (OpTag::Nand2, 0),
        PrimKind::Nand(3) => (OpTag::Nand3, 0),
        PrimKind::Nand(_) => (OpTag::Nand4, 0),
        PrimKind::Nor(2) => (OpTag::Nor2, 0),
        PrimKind::Nor(3) => (OpTag::Nor3, 0),
        PrimKind::Nor(_) => (OpTag::Nor4, 0),
        PrimKind::Xor(3) => (OpTag::Xor3, 0),
        PrimKind::Xor(_) => (OpTag::Xor2, 0),
        PrimKind::Xnor2 => (OpTag::Xnor2, 0),
        PrimKind::Mux2 => (OpTag::Mux2, 0),
        PrimKind::Muxcy => (OpTag::Muxcy, 0),
        PrimKind::Xorcy => (OpTag::Xorcy, 0),
        PrimKind::MultAnd => (OpTag::MultAnd, 0),
        PrimKind::Lut { inputs: 1, init } => (OpTag::Lut1, lut(*init)),
        PrimKind::Lut { inputs: 2, init } => (OpTag::Lut2, lut(*init)),
        PrimKind::Lut { inputs: 3, init } => (OpTag::Lut3, lut(*init)),
        PrimKind::Lut { init, .. } => (OpTag::Lut4, lut(*init)),
        PrimKind::Rom16x1 { init } => (OpTag::Lut4, lut(*init)),
        PrimKind::Gnd
        | PrimKind::Vcc
        | PrimKind::Ff { .. }
        | PrimKind::Srl16 { .. }
        | PrimKind::Ram16x1 { .. } => {
            unreachable!("constants and sequential primitives are not evaluation nodes")
        }
    }
}
