//! Waveform traces and VCD export.

use std::fmt;
use std::io::{self, Write};

use ipd_hdl::LogicVec;

/// The recorded history of one signal, one sample per clock cycle.
///
/// # Examples
///
/// ```
/// use ipd_hdl::LogicVec;
/// use ipd_sim::Trace;
///
/// let mut t = Trace::new("q", 4);
/// t.push(LogicVec::from_u64(3, 4));
/// t.push(LogicVec::from_u64(4, 4));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.sample(1).unwrap().to_u64(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    width: usize,
    samples: Vec<LogicVec>,
}

impl Trace {
    /// An empty trace for a signal of the given width.
    #[must_use]
    pub fn new(name: impl Into<String>, width: usize) -> Self {
        Trace {
            name: name.into(),
            width,
            samples: Vec::new(),
        }
    }

    /// Signal name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Signal width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Appends a sample (one per cycle).
    pub fn push(&mut self, value: LogicVec) {
        self.samples.push(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample at `cycle`, if recorded.
    #[must_use]
    pub fn sample(&self, cycle: usize) -> Option<&LogicVec> {
        self.samples.get(cycle)
    }

    /// All samples in cycle order.
    #[must_use]
    pub fn samples(&self) -> &[LogicVec] {
        &self.samples
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for s in &self.samples {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

/// Writes traces as a Value Change Dump (IEEE 1364 §18) so recorded
/// applet simulations can be opened in any conventional waveform viewer
/// — the "use with the user's own simulation tools" path of the paper.
///
/// All traces must have equal length; one cycle maps to one timestep.
///
/// # Errors
///
/// Returns any I/O error from `writer`. A mut reference can be passed
/// as the writer.
pub fn write_vcd<W: Write>(traces: &[Trace], mut writer: W) -> io::Result<()> {
    writeln!(writer, "$date reproduction $end")?;
    writeln!(writer, "$version ipd-sim $end")?;
    writeln!(writer, "$timescale 1 ns $end")?;
    writeln!(writer, "$scope module top $end")?;
    let ids: Vec<String> = (0..traces.len()).map(vcd_id).collect();
    for (trace, id) in traces.iter().zip(&ids) {
        writeln!(
            writer,
            "$var wire {} {} {} $end",
            trace.width(),
            id,
            sanitize(trace.name())
        )?;
    }
    writeln!(writer, "$upscope $end")?;
    writeln!(writer, "$enddefinitions $end")?;
    let max_len = traces.iter().map(Trace::len).max().unwrap_or(0);
    for cycle in 0..max_len {
        writeln!(writer, "#{cycle}")?;
        for (trace, id) in traces.iter().zip(&ids) {
            let Some(value) = trace.sample(cycle) else {
                continue;
            };
            // Only emit changes after the first sample.
            if cycle > 0 && trace.sample(cycle - 1) == Some(value) {
                continue;
            }
            if trace.width() == 1 {
                writeln!(writer, "{}{}", value.bit(0).to_char(), id)?;
            } else {
                writeln!(writer, "b{value} {id}")?;
            }
        }
    }
    Ok(())
}

/// VCD identifier codes: printable ASCII starting at `!`.
fn vcd_id(index: usize) -> String {
    let mut out = String::new();
    let mut i = index;
    loop {
        out.push(char::from(b'!' + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Logic;

    #[test]
    fn trace_accumulates() {
        let mut t = Trace::new("a", 1);
        assert!(t.is_empty());
        t.push(LogicVec::from(Logic::One));
        t.push(LogicVec::from(Logic::Zero));
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_string(), "a: 1 0");
        assert!(t.sample(5).is_none());
    }

    #[test]
    fn vcd_has_header_and_values() {
        let mut t = Trace::new("bus", 4);
        t.push(LogicVec::from_u64(3, 4));
        t.push(LogicVec::from_u64(3, 4)); // unchanged — no emission
        t.push(LogicVec::from_u64(9, 4));
        let mut buf = Vec::new();
        write_vcd(&[t], &mut buf).expect("vcd");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$var wire 4 ! bus $end"));
        assert!(text.contains("b0011 !"));
        assert!(text.contains("b1001 !"));
        assert_eq!(text.matches("b0011").count(), 1, "no redundant dump");
        assert!(text.contains("#2"));
    }

    #[test]
    fn vcd_scalar_format() {
        let mut t = Trace::new("bit", 1);
        t.push(LogicVec::from(Logic::X));
        t.push(LogicVec::from(Logic::One));
        let mut buf = Vec::new();
        write_vcd(&[t], &mut buf).expect("vcd");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("X!"));
        assert!(text.contains("1!"));
    }

    #[test]
    fn vcd_ids_are_unique() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
