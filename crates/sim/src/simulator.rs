//! The cycle-based four-state simulator.

use std::collections::HashMap;

use ipd_hdl::{Circuit, FlatNetlist, Logic, LogicVec, NetId, PortDir};
use ipd_techlib::FfControl;

use crate::compile::{compile, Compiled, EvalFunc, SeqUpdate};
use crate::error::SimError;
use crate::waveform::Trace;

/// State storage for one sequential element.
#[derive(Debug, Clone)]
enum StateCell {
    /// Flip-flop bit.
    Bit(Logic),
    /// 16-bit memory/shift-register word, index 0 = oldest/address 0.
    Word([Logic; 16]),
}

/// An interactive, cycle-based simulator over the flattened design.
///
/// The simulator mirrors the JHDL design suite's built-in simulator as
/// used inside IP evaluation applets: drive primary inputs with
/// [`Simulator::set`], advance the global clock with
/// [`Simulator::cycle`], observe ports, internal nets and memory
/// contents, record waveforms, and [`Simulator::reset`] back to
/// power-on state.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{Circuit, PortSpec};
/// use ipd_sim::Simulator;
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("toggle");
/// let mut ctx = circuit.root_ctx();
/// let clk = ctx.add_port(PortSpec::input("clk", 1))?;
/// let q = ctx.add_port(PortSpec::output("q", 1))?;
/// let nq = ctx.wire("nq", 1);
/// ctx.inv(q, nq)?;
/// ctx.fd(clk, nq, q)?;
///
/// let mut sim = Simulator::new(&circuit)?;
/// assert_eq!(sim.peek("q")?.to_u64(), Some(0));
/// sim.cycle(1)?;
/// assert_eq!(sim.peek("q")?.to_u64(), Some(1));
/// sim.cycle(2)?;
/// assert_eq!(sim.peek("q")?.to_u64(), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    compiled: Compiled,
    nets: Vec<Logic>,
    states: Vec<StateCell>,
    input_values: HashMap<String, LogicVec>,
    dirty: bool,
    cycle_count: u64,
    traces: Vec<Trace>,
    /// Nets recorded per trace (parallel to `traces`).
    trace_nets: Vec<Vec<NetId>>,
}

impl Simulator {
    /// Compiles a circuit for simulation, auto-detecting the clock
    /// (an input named `clk`, `c` or `clock`).
    ///
    /// # Errors
    ///
    /// Fails on flattening errors, unknown primitives, multiple drivers,
    /// `inout` ports, or sequential primitives clocked from anything
    /// but the designated clock.
    pub fn new(circuit: &Circuit) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, None)
    }

    /// Compiles a circuit with an explicit clock port.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::new`].
    pub fn with_clock(circuit: &Circuit, clock_port: &str) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, Some(clock_port))
    }

    /// Compiles an already-flattened design.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::new`].
    pub fn from_flat(flat: &FlatNetlist, clock_port: Option<&str>) -> Result<Self, SimError> {
        let compiled = compile(flat, clock_port)?;
        let mut sim = Simulator {
            nets: vec![Logic::X; compiled.net_count],
            states: Vec::new(),
            input_values: HashMap::new(),
            dirty: true,
            cycle_count: 0,
            traces: Vec::new(),
            trace_nets: Vec::new(),
            compiled,
        };
        sim.power_on();
        Ok(sim)
    }

    /// `true` when the combinational network was fully levelized (no
    /// combinational cycles; fastest mode).
    #[must_use]
    pub fn is_levelized(&self) -> bool {
        self.compiled.levelized
    }

    /// Cycles simulated since power-on or the last [`Simulator::reset`].
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        self.cycle_count
    }

    /// Names and directions of the primary ports.
    #[must_use]
    pub fn ports(&self) -> Vec<(String, PortDir, u32)> {
        self.compiled
            .ports
            .iter()
            .map(|p| (p.name.clone(), p.dir, p.nets.len() as u32))
            .collect()
    }

    fn power_on(&mut self) {
        self.nets.fill(Logic::X);
        self.states.clear();
        for update in &self.compiled.seq {
            match update {
                SeqUpdate::Ff { init, .. } => self.states.push(StateCell::Bit(*init)),
                SeqUpdate::Srl16 { init, .. } | SeqUpdate::Ram16 { init, .. } => {
                    let mut word = [Logic::Zero; 16];
                    for (i, bit) in word.iter_mut().enumerate() {
                        *bit = Logic::from_bool((init >> i) & 1 == 1);
                    }
                    self.states.push(StateCell::Word(word));
                }
            }
        }
        for &(net, v) in &self.compiled.const_drives {
            self.nets[net.index()] = v;
        }
        for &net in &self.compiled.black_box_outputs {
            self.nets[net.index()] = Logic::X;
        }
        self.drive_state_outputs();
        // Clock nets idle low between edges.
        for &net in &self.compiled.clock_nets {
            self.nets[net.index()] = Logic::Zero;
        }
        self.dirty = true;
    }

    /// Resets all sequential state to power-on values, keeping the
    /// current input assignments (the applet's *Reset* button).
    pub fn reset(&mut self) {
        let inputs = std::mem::take(&mut self.input_values);
        self.power_on();
        self.cycle_count = 0;
        for (port, value) in inputs {
            // Re-apply saved inputs; widths were validated on set.
            let _ = self.set(&port, value);
        }
    }

    /// Drives a primary input port with a value.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports, non-inputs and width mismatches.
    pub fn set(&mut self, port: &str, value: LogicVec) -> Result<(), SimError> {
        let info = self
            .compiled
            .ports
            .iter()
            .find(|p| p.name == port)
            .ok_or_else(|| SimError::UnknownPort {
                port: port.to_owned(),
            })?;
        if info.dir != PortDir::Input {
            return Err(SimError::NotAnInput {
                port: port.to_owned(),
            });
        }
        if info.nets.len() != value.width() {
            return Err(SimError::WidthMismatch {
                port: port.to_owned(),
                expected: info.nets.len() as u32,
                found: value.width() as u32,
            });
        }
        for (i, &net) in info.nets.iter().enumerate() {
            self.nets[net.index()] = value.bit(i);
        }
        self.input_values.insert(port.to_owned(), value);
        self.dirty = true;
        Ok(())
    }

    /// Convenience: drives a port with an unsigned integer.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::set`].
    pub fn set_u64(&mut self, port: &str, value: u64) -> Result<(), SimError> {
        let width = self.port_width(port)?;
        self.set(port, LogicVec::from_u64(value, width as usize))
    }

    /// Convenience: drives a port with a signed integer (two's
    /// complement).
    ///
    /// # Errors
    ///
    /// As for [`Simulator::set`].
    pub fn set_i64(&mut self, port: &str, value: i64) -> Result<(), SimError> {
        let width = self.port_width(port)?;
        self.set(port, LogicVec::from_i64(value, width as usize))
    }

    fn port_width(&self, port: &str) -> Result<u32, SimError> {
        self.compiled
            .ports
            .iter()
            .find(|p| p.name == port)
            .map(|p| p.nets.len() as u32)
            .ok_or_else(|| SimError::UnknownPort {
                port: port.to_owned(),
            })
    }

    /// Reads the current value of any primary port.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports or if combinational settling oscillates.
    pub fn peek(&mut self, port: &str) -> Result<LogicVec, SimError> {
        self.ensure_settled()?;
        let info = self
            .compiled
            .ports
            .iter()
            .find(|p| p.name == port)
            .ok_or_else(|| SimError::UnknownPort {
                port: port.to_owned(),
            })?;
        Ok(info.nets.iter().map(|n| self.nets[n.index()]).collect())
    }

    /// Reads one internal net by hierarchical name.
    ///
    /// # Errors
    ///
    /// Fails for unknown nets or if settling oscillates.
    pub fn peek_net(&mut self, net: &str) -> Result<Logic, SimError> {
        self.ensure_settled()?;
        let id =
            self.compiled
                .name_to_net
                .get(net)
                .copied()
                .ok_or_else(|| SimError::UnknownNet {
                    net: net.to_owned(),
                })?;
        Ok(self.nets[id.index()])
    }

    /// Reads the 16-bit contents of a shift register or RAM by instance
    /// path (the JHDL memory viewer).
    #[must_use]
    pub fn memory(&self, instance_path: &str) -> Option<LogicVec> {
        let idx = self
            .compiled
            .state_paths
            .iter()
            .position(|p| p == instance_path)?;
        match &self.states[idx] {
            StateCell::Word(word) => Some(word.iter().copied().collect()),
            StateCell::Bit(_) => None,
        }
    }

    /// Lists the instance paths of all stateful elements (flip-flops,
    /// shift registers, RAMs).
    #[must_use]
    pub fn state_elements(&self) -> &[String] {
        &self.compiled.state_paths
    }

    /// Advances the global clock by `n` cycles.
    ///
    /// # Errors
    ///
    /// Fails if combinational settling oscillates.
    pub fn cycle(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.one_cycle()?;
        }
        Ok(())
    }

    fn one_cycle(&mut self) -> Result<(), SimError> {
        self.ensure_settled()?;
        // Capture next state from pre-edge values.
        let mut next: Vec<StateCell> = self.states.clone();
        for update in &self.compiled.seq {
            match update {
                SeqUpdate::Ff {
                    state,
                    d,
                    ce,
                    control,
                    q: _,
                    init: _,
                } => {
                    let cur = match self.states[*state] {
                        StateCell::Bit(v) => v,
                        StateCell::Word(_) => unreachable!("ff state is a bit"),
                    };
                    let d = self.nets[d.index()];
                    let mut value = match ce.map(|c| self.nets[c.index()]) {
                        None => d,
                        Some(Logic::One) => d,
                        Some(Logic::Zero) => cur,
                        Some(_) => Logic::X,
                    };
                    if let Some((kind, net)) = control {
                        match (kind, self.nets[net.index()]) {
                            (_, Logic::One) => value = Logic::Zero,
                            (_, Logic::Zero) => {}
                            (FfControl::AsyncClear | FfControl::SyncReset, _) => value = Logic::X,
                            (FfControl::None, _) => {}
                        }
                    }
                    next[*state] = StateCell::Bit(value);
                }
                SeqUpdate::Srl16 {
                    state,
                    d,
                    ce,
                    init: _,
                } => {
                    let StateCell::Word(cur) = &self.states[*state] else {
                        unreachable!("srl state is a word")
                    };
                    let mut word = *cur;
                    match self.nets[ce.index()] {
                        Logic::One => {
                            for i in (1..16).rev() {
                                word[i] = word[i - 1];
                            }
                            word[0] = self.nets[d.index()];
                        }
                        Logic::Zero => {}
                        _ => word = [Logic::X; 16],
                    }
                    next[*state] = StateCell::Word(word);
                }
                SeqUpdate::Ram16 {
                    state,
                    d,
                    we,
                    addr,
                    init: _,
                } => {
                    let StateCell::Word(cur) = &self.states[*state] else {
                        unreachable!("ram state is a word")
                    };
                    let mut word = *cur;
                    match self.nets[we.index()] {
                        Logic::One => {
                            let mut idx = 0usize;
                            let mut known = true;
                            for (i, a) in addr.iter().enumerate() {
                                match self.nets[a.index()].to_bool() {
                                    Some(true) => idx |= 1 << i,
                                    Some(false) => {}
                                    None => known = false,
                                }
                            }
                            if known {
                                word[idx] = self.nets[d.index()];
                            } else {
                                word = [Logic::X; 16];
                            }
                        }
                        Logic::Zero => {}
                        _ => word = [Logic::X; 16],
                    }
                    next[*state] = StateCell::Word(word);
                }
            }
        }
        self.states = next;
        self.drive_state_outputs();
        self.dirty = true;
        self.ensure_settled()?;
        self.cycle_count += 1;
        self.sample_traces();
        Ok(())
    }

    fn drive_state_outputs(&mut self) {
        for update in &self.compiled.seq {
            if let SeqUpdate::Ff { state, q, .. } = update {
                if let StateCell::Bit(v) = self.states[*state] {
                    self.nets[q.index()] = v;
                }
            }
        }
    }

    fn ensure_settled(&mut self) -> Result<(), SimError> {
        if !self.dirty {
            return Ok(());
        }
        if self.compiled.levelized {
            // One topological pass is exact.
            for i in 0..self.compiled.eval_order.len() {
                let value = self.eval_node(i);
                let out = self.compiled.eval_order[i].output;
                self.nets[out.index()] = value;
            }
        } else {
            let limit = 2 * self.compiled.eval_order.len() + 8;
            let mut pass = 0;
            loop {
                let mut changed_net: Option<NetId> = None;
                for i in 0..self.compiled.eval_order.len() {
                    let value = self.eval_node(i);
                    let out = self.compiled.eval_order[i].output;
                    if self.nets[out.index()] != value {
                        self.nets[out.index()] = value;
                        changed_net = Some(out);
                    }
                }
                match changed_net {
                    None => break,
                    Some(net) => {
                        pass += 1;
                        if pass > limit {
                            return Err(SimError::Oscillation {
                                net: self.compiled.net_names[net.index()].clone(),
                            });
                        }
                    }
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    fn eval_node(&self, index: usize) -> Logic {
        let node = &self.compiled.eval_order[index];
        match &node.func {
            EvalFunc::Prim(kind) => {
                let inputs: Vec<Logic> = node.inputs.iter().map(|n| self.nets[n.index()]).collect();
                kind.eval_comb(&inputs)
            }
            EvalFunc::SrlRead { state } | EvalFunc::RamRead { state } => {
                let StateCell::Word(word) = &self.states[*state] else {
                    return Logic::X;
                };
                let mut idx = 0usize;
                let mut unknown = false;
                for (i, n) in node.inputs.iter().enumerate() {
                    match self.nets[n.index()].to_bool() {
                        Some(true) => idx |= 1 << i,
                        Some(false) => {}
                        None => unknown = true,
                    }
                }
                if unknown {
                    // If every word bit agrees the address is irrelevant.
                    let first = word[0];
                    if first.is_driven() && word.iter().all(|&b| b == first) {
                        first
                    } else {
                        Logic::X
                    }
                } else {
                    word[idx]
                }
            }
        }
    }

    /// Starts recording a waveform for a primary port.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports.
    pub fn record(&mut self, port: &str) -> Result<(), SimError> {
        let info = self
            .compiled
            .ports
            .iter()
            .find(|p| p.name == port)
            .ok_or_else(|| SimError::UnknownPort {
                port: port.to_owned(),
            })?;
        self.traces.push(Trace::new(port, info.nets.len()));
        self.trace_nets.push(info.nets.clone());
        Ok(())
    }

    /// Starts recording a waveform for an internal net.
    ///
    /// # Errors
    ///
    /// Fails for unknown nets.
    pub fn record_net(&mut self, net: &str) -> Result<(), SimError> {
        let id =
            self.compiled
                .name_to_net
                .get(net)
                .copied()
                .ok_or_else(|| SimError::UnknownNet {
                    net: net.to_owned(),
                })?;
        self.traces.push(Trace::new(net, 1));
        self.trace_nets.push(vec![id]);
        Ok(())
    }

    fn sample_traces(&mut self) {
        for (trace, nets) in self.traces.iter_mut().zip(&self.trace_nets) {
            let value: LogicVec = nets.iter().map(|n| self.nets[n.index()]).collect();
            trace.push(value);
        }
    }

    /// The recorded waveforms, in recording order.
    #[must_use]
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Cycles until `port` reads `value`, up to `max_cycles`.
    ///
    /// Returns the number of cycles consumed (0 if the condition
    /// already holds).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the budget is exhausted, plus
    /// any port/settling errors.
    pub fn run_until(
        &mut self,
        port: &str,
        value: &LogicVec,
        max_cycles: u64,
    ) -> Result<u64, SimError> {
        for elapsed in 0..=max_cycles {
            if &self.peek(port)? == value {
                return Ok(elapsed);
            }
            if elapsed < max_cycles {
                self.one_cycle()?;
            }
        }
        Err(SimError::Timeout {
            port: port.to_owned(),
            cycles: max_cycles,
        })
    }

    /// Reads a flip-flop's current state by instance path (the memory
    /// viewer's register pane).
    #[must_use]
    pub fn ff_state(&self, instance_path: &str) -> Option<Logic> {
        let idx = self
            .compiled
            .state_paths
            .iter()
            .position(|p| p == instance_path)?;
        match self.states[idx] {
            StateCell::Bit(v) => Some(v),
            StateCell::Word(_) => None,
        }
    }

    /// Overwrites the 16-bit contents of a shift register or RAM by
    /// instance path (testbench back-door initialization).
    ///
    /// Returns `false` when the path names no word-state element.
    pub fn set_memory(&mut self, instance_path: &str, value: &LogicVec) -> bool {
        let Some(idx) = self
            .compiled
            .state_paths
            .iter()
            .position(|p| p == instance_path)
        else {
            return false;
        };
        let StateCell::Word(word) = &mut self.states[idx] else {
            return false;
        };
        for (i, slot) in word.iter_mut().enumerate() {
            *slot = value.get(i).unwrap_or(Logic::Zero);
        }
        self.dirty = true;
        true
    }
}
