//! # ipd — web-style FPGA IP evaluation and delivery
//!
//! A production-quality Rust reproduction of *IP Delivery for FPGAs
//! Using Applets and JHDL* (Wirthlin & McMurtrey, DAC 2002): a
//! JHDL-style structural design environment plus the capability-gated
//! applet machinery that lets an IP vendor deliver evaluate-before-you-
//! license FPGA cores over the web.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`hdl`] | `ipd-hdl` | circuit data structure, generators, flattening, validation |
//! | [`techlib`] | `ipd-techlib` | Virtex-like primitives, area/delay models, device catalog |
//! | [`sim`] | `ipd-sim` | cycle simulator, waveforms, VCD |
//! | [`netlist`] | `ipd-netlist` | EDIF / VHDL / Verilog writers |
//! | [`estimate`] | `ipd-estimate` | area and timing estimation |
//! | [`lint`] | `ipd-lint` | netlist static analysis: CDC, dead logic, X-prop, waivers, lint-gated delivery |
//! | [`modgen`] | `ipd-modgen` | module generators (KCM multiplier, adders, FIR, …) |
//! | [`viewer`] | `ipd-viewer` | schematic / layout / hierarchy / waveform views |
//! | [`pack`] | `ipd-pack` | archives, LZSS, the Table 1 bundles |
//! | [`core`] | `ipd-core` | capabilities, licenses, applet host & sessions, protection |
//! | [`verify`] | `ipd-verify` | formal equivalence: AIG, CDCL SAT, fraig sweep, CEC, certificates |
//! | [`cosim`] | `ipd-cosim` | black-box co-simulation over sockets, baselines |
//! | [`wire`] | `ipd-wire` | the one framed transport under every socket: caps, deadlines, sessions, stats |
//!
//! # Quickstart
//!
//! ```
//! use ipd::core::{AppletHost, AppletSession, CapabilitySet, IpExecutable};
//! use ipd::modgen::KcmMultiplier;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's running example: -56 × x, 8-bit input, 12-bit product.
//! let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
//! let exe = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::licensed());
//! let mut host = AppletHost::new();
//! host.load(&exe);
//! let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
//! session.build()?;
//! println!("{}", session.estimate_area()?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use ipd_core as core;
pub use ipd_cosim as cosim;
pub use ipd_estimate as estimate;
pub use ipd_hdl as hdl;
pub use ipd_lint as lint;
pub use ipd_modgen as modgen;
pub use ipd_netlist as netlist;
pub use ipd_pack as pack;
pub use ipd_sim as sim;
pub use ipd_techlib as techlib;
pub use ipd_verify as verify;
pub use ipd_viewer as viewer;
pub use ipd_wire as wire;
