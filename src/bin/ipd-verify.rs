//! `ipd-verify` — the vendor's formal equivalence checker.
//!
//! Proves two EDIF netlists functionally equivalent over their matched
//! primary I/O and register cut with the `ipd-verify` engine (AIG
//! lowering, sim-guided fraig sweep, CDCL SAT miters), or refutes them
//! with a distinguishing input/state vector that has already been
//! replayed through both simulation engines. Exits nonzero on any
//! mismatch — the same gate [`ipd::core::seal_design_verified`]
//! applies before certifying a delivery.
//!
//! ```text
//! ipd-verify [options] GOLDEN.edif REVISED.edif
//! ipd-verify [options] --examples
//! ```
//!
//! `--examples` round-trips every built-in example design through the
//! EDIF writer/reader and proves the reread netlist equivalent to the
//! generator output — an end-to-end self-check of generators, netlist
//! I/O and the prover.
//!
//! Options: `--clock NAME` (override clock auto-detection),
//! `--by-position` (pair state elements by order instead of path),
//! `--no-sweep` (skip the fraig sweep; SAT the output miters
//! directly), `--seed N` (signature-simulation PRNG seed),
//! `--stats` (print engine statistics per pair).

use std::process::ExitCode;

use ipd::hdl::FlatNetlist;
use ipd::verify::{check_equiv, EquivConfig, EquivReport, EquivVerdict, StateMatch};

fn usage() -> &'static str {
    "usage: ipd-verify [--clock NAME] [--by-position] [--no-sweep] \
     [--seed N] [--stats] (--examples | GOLDEN.edif REVISED.edif)"
}

/// Prints a verdict line (and optional stats); returns `true` when the
/// pair proved equivalent.
fn report(name: &str, report: &EquivReport, stats: bool) -> bool {
    let ok = match &report.verdict {
        EquivVerdict::Equivalent => {
            println!(
                "== {name}: EQUIVALENT ({} functions, {} by hash, {} SAT queries)",
                report.stats.outputs_checked,
                report.stats.outputs_by_hash,
                report.stats.sat_queries,
            );
            true
        }
        EquivVerdict::NotEquivalent(cex) => {
            println!("== {name}: NOT EQUIVALENT at {}", cex.function);
            println!(
                "   golden={}, revised={}",
                u8::from(cex.golden_value),
                u8::from(cex.revised_value)
            );
            for (port, value) in &cex.inputs {
                println!("   input {port} = {value}");
            }
            for s in &cex.state {
                if s.golden_path == s.revised_path {
                    println!("   state {} = {}", s.golden_path, s.value);
                } else {
                    println!(
                        "   state {} / {} = {}",
                        s.golden_path, s.revised_path, s.value
                    );
                }
            }
            false
        }
    };
    if stats {
        let s = &report.stats;
        println!(
            "   aig: {} ands ({} after sweep), {} sim patterns, {} merged, \
             {} SAT queries, {} conflicts",
            s.aig_ands, s.reduced_ands, s.sim_patterns, s.merged, s.sat_queries, s.sat_conflicts,
        );
    }
    ok
}

fn read_flat(path: &str) -> Result<FlatNetlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let circuit = ipd::netlist::read_edif(&text).map_err(|e| format!("{path}: {e}"))?;
    FlatNetlist::build(&circuit).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut cfg = EquivConfig::default();
    let mut use_examples = false;
    let mut stats = false;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--examples" => use_examples = true,
            "--by-position" => cfg.state_match = StateMatch::ByPosition,
            "--no-sweep" => cfg.sweep = false,
            "--stats" => stats = true,
            "--clock" => {
                let Some(name) = args.next() else {
                    eprintln!("--clock requires a port name argument");
                    return ExitCode::FAILURE;
                };
                cfg.clock = Some(name);
            }
            "--seed" => {
                let Some(n) = args.next() else {
                    eprintln!("--seed requires a number argument");
                    return ExitCode::FAILURE;
                };
                match n.parse() {
                    Ok(seed) => cfg.seed = seed,
                    Err(e) => {
                        eprintln!("--seed {n}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_owned()),
        }
    }

    // Collect (name, golden, revised) pairs to check.
    let mut pairs: Vec<(String, FlatNetlist, FlatNetlist)> = Vec::new();
    if use_examples {
        if !files.is_empty() {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
        for (name, circuit) in ipd::modgen::example_zoo() {
            let golden = match FlatNetlist::build(&circuit) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{name}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let edif = match ipd::netlist::NetlistFormat::Edif.generate(&circuit) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{name}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reread = match ipd::netlist::read_edif(&edif)
                .map_err(|e| e.to_string())
                .and_then(|c| FlatNetlist::build(&c).map_err(|e| e.to_string()))
            {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{name}: EDIF round-trip: {e}");
                    return ExitCode::FAILURE;
                }
            };
            pairs.push((name, golden, reread));
        }
    } else {
        let [golden_path, revised_path] = files.as_slice() else {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        };
        let (golden, revised) = match (read_flat(golden_path), read_flat(revised_path)) {
            (Ok(g), Ok(r)) => (g, r),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        pairs.push((format!("{golden_path} vs {revised_path}"), golden, revised));
    }

    let mut failures = 0usize;
    for (name, golden, revised) in &pairs {
        match check_equiv(golden, revised, &cfg) {
            Ok(r) => {
                if !report(name, &r, stats) {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("== {name}: ERROR: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("ipd-verify: {failures} of {} pair(s) failed", pairs.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
