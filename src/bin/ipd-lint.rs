//! `ipd-lint` — the vendor's pre-delivery netlist checker.
//!
//! Runs the full `ipd-lint` static-analysis engine (connectivity,
//! combinational loops, CDC, dead logic, X-propagation, fanout) over
//! EDIF netlists or the built-in example designs, and exits nonzero
//! when any unwaived error-severity finding remains — the same gate
//! [`ipd::core::seal_design`] applies before sealing a delivery.
//!
//! ```text
//! ipd-lint [OPTIONS] --examples
//! ipd-lint [OPTIONS] DESIGN.edif [...]
//! ipd-lint --list-rules
//! ```
//!
//! `--config` loads waivers, severity overrides and limits in the
//! `LintConfig` text format; `--json` emits machine-readable reports.
//! `--rules` restricts the run to a comma-separated list of rule ids
//! (all other catalog rules are set to `allow`); `--list-rules` prints
//! the catalog. `--timing` loads a `TimingConstraints` file and adds
//! the STA pass: each design's slack report is printed and unwaived
//! setup violations fail the run like any other lint error.
//! `--semantic[=BUDGET]` enables the SAT-backed semantic tier: the
//! structural dead/constant/X findings are confirmed, refined or
//! upgraded by an `ipd-verify` oracle (optionally capped at `BUDGET`
//! solver conflicts per query), and redundant-logic and
//! unreachable-state mining runs on top.
//!
//! Exit codes: `0` — every design is free of unwaived errors; `1` —
//! at least one unwaived error-severity finding; `2` — usage or I/O
//! error (bad flags, unreadable file, unparsable netlist or config).

use std::process::ExitCode;

use ipd::estimate::analyze_timing;
use ipd::lint::{
    rule_catalog, LintConfig, LintLevel, LintReport, Linter, OracleOptions, TimingConstraints,
};

/// Usage or I/O failure (distinct from lint findings, which exit 1).
const EXIT_USAGE: u8 = 2;

const USAGE: &str = "usage: ipd-lint [--config FILE] [--timing FILE] [--rules ID,ID,...] \
     [--semantic[=BUDGET]] [--json] (--examples | DESIGN.edif ...)\n\
     \x20      ipd-lint --list-rules";

const HELP: &str = "\
  --examples          lint the built-in module-generator example zoo
  --config FILE       load waivers / severity overrides / limits
  --timing FILE       load timing constraints and add the STA pass
  --rules ID,ID,...   run only the listed rules (others set to allow)
  --list-rules        print the rule catalog (id, severity, help) and exit
  --semantic[=BUDGET] enable the SAT-backed semantic tier; BUDGET caps
                      solver conflicts per query (0 = unlimited)
  --json              machine-readable reports

exit codes:
  0  all designs free of unwaived error-severity findings
  1  at least one unwaived error-severity finding
  2  usage or I/O error";

/// The example designs `--examples` checks: the shared modgen zoo
/// (the same list the equivalence CI gate proves against its golden
/// EDIF fixtures).
fn examples() -> Vec<(String, ipd::hdl::Circuit)> {
    ipd::modgen::example_zoo()
}

fn print_report(name: &str, report: &LintReport, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        println!("== {name}: {}", report.summary());
        print!("{report}");
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut use_examples = false;
    let mut config = LintConfig::new();
    let mut constraints: Option<TimingConstraints> = None;
    let mut semantic: Option<OracleOptions> = None;
    let mut rule_filter: Option<Vec<String>> = None;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--examples" => use_examples = true,
            "--list-rules" => {
                for rule in rule_catalog() {
                    println!("{:<20} {:<8} {}", rule.id, rule.severity, rule.help);
                }
                return ExitCode::SUCCESS;
            }
            "--semantic" => semantic = Some(OracleOptions::default()),
            "--rules" => {
                let Some(list) = args.next() else {
                    eprintln!("--rules requires a comma-separated list of rule ids");
                    return ExitCode::from(EXIT_USAGE);
                };
                rule_filter = Some(list.split(',').map(str::to_owned).collect());
            }
            "--config" => {
                let Some(path) = args.next() else {
                    eprintln!("--config requires a file argument");
                    return ExitCode::from(EXIT_USAGE);
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                };
                match LintConfig::parse(&text) {
                    Ok(c) => config = c,
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            "--timing" => {
                let Some(path) = args.next() else {
                    eprintln!("--timing requires a constraints file argument");
                    return ExitCode::from(EXIT_USAGE);
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                };
                match TimingConstraints::parse(&text) {
                    Ok(t) => constraints = Some(t),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}\n\n{HELP}");
                return ExitCode::SUCCESS;
            }
            other => {
                if let Some(budget) = other.strip_prefix("--semantic=") {
                    match budget.parse::<u64>() {
                        Ok(conflict_budget) => {
                            semantic = Some(OracleOptions {
                                conflict_budget,
                                ..OracleOptions::default()
                            });
                        }
                        Err(_) => {
                            eprintln!("--semantic budget must be an integer, got {budget:?}");
                            return ExitCode::from(EXIT_USAGE);
                        }
                    }
                } else if other.starts_with("--") {
                    eprintln!("unknown flag {other}\n{USAGE}");
                    return ExitCode::from(EXIT_USAGE);
                } else {
                    files.push(other.to_owned());
                }
            }
        }
    }
    if !use_examples && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    if let Some(selected) = &rule_filter {
        let catalog = rule_catalog();
        for id in selected {
            if !catalog.iter().any(|r| r.id == id) {
                eprintln!("unknown rule {id:?} (see --list-rules)");
                return ExitCode::from(EXIT_USAGE);
            }
        }
        // Everything not selected drops to `allow`; selected rules keep
        // their configured (or catalog) severity.
        for rule in catalog {
            if !selected.iter().any(|id| id == rule.id) {
                config.set_level(rule.id.to_owned(), LintLevel::Allow);
            }
        }
    }

    let mut designs = if use_examples { examples() } else { Vec::new() };
    for path in files {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        match ipd::netlist::read_edif(&text) {
            Ok(c) => designs.push((path, c)),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }

    let mut linter = match semantic {
        Some(opts) => Linter::with_oracle(config, opts),
        None => Linter::with_config(config),
    };
    if let Some(t) = &constraints {
        linter.add_pass(Box::new(ipd::lint::TimingPass::new(
            t.clone(),
            ipd::techlib::DelayModel::virtex(),
        )));
    }
    let mut errors = 0usize;
    for (name, circuit) in &designs {
        match linter.run(circuit) {
            Ok(report) => {
                errors += report.error_count();
                print_report(name, &report, json);
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
        // The STA report itself (slack tables, histograms, critical
        // paths) rides alongside the lint diagnostics when timing is
        // requested; the gate above already counted its violations.
        if let Some(t) = &constraints {
            match analyze_timing(circuit, t) {
                Ok(sta) => {
                    if json {
                        println!("{}", sta.to_json());
                    } else {
                        println!("-- {name}: {}", sta.summary());
                        print!("{sta}");
                    }
                }
                Err(e) => {
                    eprintln!("{name}: sta: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        }
    }
    if errors > 0 {
        eprintln!(
            "ipd-lint: {errors} unwaived error(s) across {} design(s)",
            designs.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
