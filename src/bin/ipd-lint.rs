//! `ipd-lint` — the vendor's pre-delivery netlist checker.
//!
//! Runs the full `ipd-lint` static-analysis engine (connectivity,
//! combinational loops, CDC, dead logic, X-propagation, fanout) over
//! EDIF netlists or the built-in example designs, and exits nonzero
//! when any unwaived error-severity finding remains — the same gate
//! [`ipd::core::seal_design`] applies before sealing a delivery.
//!
//! ```text
//! ipd-lint [--config FILE] [--timing FILE] [--json] --examples
//! ipd-lint [--config FILE] [--timing FILE] [--json] DESIGN.edif [...]
//! ```
//!
//! `--config` loads waivers, severity overrides and limits in the
//! `LintConfig` text format; `--json` emits machine-readable reports.
//! `--timing` loads a `TimingConstraints` file and adds the STA pass:
//! each design's slack report is printed and unwaived setup
//! violations fail the run like any other lint error.

use std::process::ExitCode;

use ipd::estimate::analyze_timing;
use ipd::lint::{LintConfig, LintReport, Linter, TimingConstraints};

/// The example designs `--examples` checks: the shared modgen zoo
/// (the same list the equivalence CI gate proves against its golden
/// EDIF fixtures).
fn examples() -> Vec<(String, ipd::hdl::Circuit)> {
    ipd::modgen::example_zoo()
}

fn print_report(name: &str, report: &LintReport, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        println!("== {name}: {}", report.summary());
        print!("{report}");
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut use_examples = false;
    let mut config = LintConfig::new();
    let mut constraints: Option<TimingConstraints> = None;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--examples" => use_examples = true,
            "--config" => {
                let Some(path) = args.next() else {
                    eprintln!("--config requires a file argument");
                    return ExitCode::FAILURE;
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match LintConfig::parse(&text) {
                    Ok(c) => config = c,
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--timing" => {
                let Some(path) = args.next() else {
                    eprintln!("--timing requires a constraints file argument");
                    return ExitCode::FAILURE;
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match TimingConstraints::parse(&text) {
                    Ok(t) => constraints = Some(t),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: ipd-lint [--config FILE] [--timing FILE] [--json] \
                     (--examples | DESIGN.edif ...)"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_owned()),
        }
    }
    if !use_examples && files.is_empty() {
        eprintln!("usage: ipd-lint [--config FILE] [--json] (--examples | DESIGN.edif ...)");
        return ExitCode::FAILURE;
    }

    let mut designs = if use_examples { examples() } else { Vec::new() };
    for path in files {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match ipd::netlist::read_edif(&text) {
            Ok(c) => designs.push((path, c)),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let linter = match &constraints {
        Some(t) => Linter::with_timing(config, t.clone()),
        None => Linter::with_config(config),
    };
    let mut errors = 0usize;
    for (name, circuit) in &designs {
        match linter.run(circuit) {
            Ok(report) => {
                errors += report.error_count();
                print_report(name, &report, json);
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        }
        // The STA report itself (slack tables, histograms, critical
        // paths) rides alongside the lint diagnostics when timing is
        // requested; the gate above already counted its violations.
        if let Some(t) = &constraints {
            match analyze_timing(circuit, t) {
                Ok(sta) => {
                    if json {
                        println!("{}", sta.to_json());
                    } else {
                        println!("-- {name}: {}", sta.summary());
                        print!("{sta}");
                    }
                }
                Err(e) => {
                    eprintln!("{name}: sta: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if errors > 0 {
        eprintln!(
            "ipd-lint: {errors} unwaived error(s) across {} design(s)",
            designs.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
