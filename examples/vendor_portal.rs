//! The vendor portal — the paper's Figure 2: two (plus one) IP
//! executable configurations with different visibility, served per
//! customer profile, with licensing, metering and tamper rejection.
//!
//! Run with: `cargo run --example vendor_portal`

use ipd::core::{AppletHost, AppletServer, AppletSession, Capability, CapabilitySet, CoreError};
use ipd::modgen::KcmMultiplier;
use ipd::netlist::NetlistFormat;

fn kcm() -> Box<KcmMultiplier> {
    Box::new(KcmMultiplier::new(-56, 8, 12).signed(true))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = AppletServer::new("byu", b"vendor-signing-key".to_vec());

    // Three customer profiles with increasing visibility.
    server.enroll(
        "browsing-bob",
        "virtex-kcm",
        CapabilitySet::passive(),
        0,
        90,
    );
    server.enroll(
        "evaluating-eve",
        "virtex-kcm",
        CapabilitySet::evaluation(),
        0,
        90,
    );
    server.enroll(
        "licensed-lucy",
        "virtex-kcm",
        CapabilitySet::licensed(),
        0,
        365,
    );

    for customer in ["browsing-bob", "evaluating-eve", "licensed-lucy"] {
        let executable = server.serve(customer, 10)?;
        println!("===== {customer} =====");
        println!("{executable}");
        let mut host = AppletHost::new();
        let bytes = host.load(&executable);
        println!("download: {} kB\n", bytes.div_ceil(1024));

        let mut session = AppletSession::new(&executable, &host, kcm());
        session.build()?;

        // What can this customer actually do?
        let attempt = |label: &str, result: Result<String, CoreError>| match result {
            Ok(out) => println!("  {label:<18} OK ({} bytes)", out.len()),
            Err(CoreError::CapabilityDenied { capability }) => {
                println!("  {label:<18} DENIED (needs {capability})");
            }
            Err(e) => println!("  {label:<18} error: {e}"),
        };
        attempt("estimate", session.estimate_area().map(|r| r.to_string()));
        attempt("schematic", session.schematic());
        attempt("layout", session.layout());
        attempt(
            "simulate",
            session
                .set_i64("multiplicand", 5)
                .and_then(|()| session.peek("product"))
                .map(|v| v.to_string()),
        );
        attempt("netlist", session.netlist(NetlistFormat::Edif));
        println!();
    }

    // An expired profile is refused and audited.
    server.enroll("expired-ed", "virtex-kcm", CapabilitySet::licensed(), 0, 5);
    match server.serve("expired-ed", 100) {
        Err(CoreError::LicenseExpired { expiry_day, today }) => {
            println!("expired-ed refused: license ended day {expiry_day}, today is {today}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // A forged license (capability escalation) fails verification.
    let real = server.enroll(
        "forging-fred",
        "virtex-kcm",
        CapabilitySet::passive(),
        0,
        90,
    );
    println!("\nfred's real license:   {real}");
    println!(
        "fred upgrades himself… but the signature only covers [{}],",
        real.capabilities()
    );
    println!("so the authority rejects any altered capability bits (see ipd-core tests).");

    // Conditional delivery: the browser revalidates cached bundles by
    // content digest, so a repeat visit transfers nothing (HTTP-304
    // semantics over the compress-once bundle store).
    println!("\n== conditional delivery (licensed-lucy revisits) ==");
    let manifest = server.manifest("licensed-lucy", 11)?;
    println!(
        "manifest: {} bundles, {} kB packed",
        manifest.entries().len(),
        manifest.total_packed().div_ceil(1024)
    );
    let mut browser = AppletHost::new();
    let first = browser.sync(&mut server, "licensed-lucy", 11)?;
    let revisit = browser.sync(&mut server, "licensed-lucy", 12)?;
    println!("first visit : {} kB transferred", first.div_ceil(1024));
    println!("revisit     : {revisit} bytes transferred (all not-modified)");
    println!("store       : {}", server.store().stats());

    // Metering: the audit log is the paper's hardware-metering analog.
    println!("\n== vendor audit log ==");
    for record in server.audit_log() {
        println!(
            "  day {:>3}  {:<availability$}  {}",
            record.day,
            record.customer,
            record.outcome,
            availability = 16
        );
    }
    println!(
        "\nnetlist capability granted to {} of {} served applets",
        server
            .audit_log()
            .iter()
            .filter(|r| r.outcome.contains(&Capability::Netlist.to_string()))
            .count(),
        server.audit_log().len()
    );
    Ok(())
}
