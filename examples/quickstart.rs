//! Quickstart: build the paper's full-adder listing by hand, validate
//! it, simulate it, and netlist it.
//!
//! Run with: `cargo run --example quickstart`

use ipd::hdl::{Circuit, PortSpec};
use ipd::netlist::edif_string;
use ipd::sim::Simulator;
use ipd::techlib::LogicCtx;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §2 code fragment, in Rust: a full adder from gates.
    //
    //   co = a&b | a&ci | b&ci
    //   s  = a ^ b ^ ci
    let mut circuit = Circuit::new("full_adder");
    let mut ctx = circuit.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1))?;
    let b = ctx.add_port(PortSpec::input("b", 1))?;
    let ci = ctx.add_port(PortSpec::input("ci", 1))?;
    let s = ctx.add_port(PortSpec::output("s", 1))?;
    let co = ctx.add_port(PortSpec::output("co", 1))?;

    let t1 = ctx.wire("t1", 1);
    let t2 = ctx.wire("t2", 1);
    let t3 = ctx.wire("t3", 1);
    ctx.and2(a, b, t1)?;
    ctx.and2(a, ci, t2)?;
    ctx.and2(b, ci, t3)?;
    ctx.or3(t1, t2, t3, co)?; // co is carry out
    ctx.xor3(a, b, ci, s)?; // s is output

    // Design rules.
    let report = ipd::hdl::validate(&circuit)?;
    println!("{report}");

    // Structure.
    println!("{}", ipd::viewer::schematic_text(&circuit, circuit.root()));

    // Exhaustive simulation.
    let mut sim = Simulator::new(&circuit)?;
    println!("a b ci | s co");
    for value in 0..8u64 {
        let (av, bv, cv) = (value & 1, (value >> 1) & 1, (value >> 2) & 1);
        sim.set_u64("a", av)?;
        sim.set_u64("b", bv)?;
        sim.set_u64("ci", cv)?;
        let sum = sim.peek("s")?.to_u64().expect("driven");
        let carry = sim.peek("co")?.to_u64().expect("driven");
        println!("{av} {bv} {cv}  | {sum} {carry}");
        assert_eq!(sum + 2 * carry, av + bv + cv);
    }

    // Netlist (the applet's Netlist button).
    let edif = edif_string(&circuit)?;
    println!("\nEDIF netlist ({} bytes), first lines:", edif.len());
    for line in edif.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
