//! Multi-IP catalog delivery — the paper's future-work items realized:
//! one applet delivering *several* IP modules, sealed ("encrypted")
//! bundle transport, and a generated Verilog testbench that replays the
//! applet evaluation inside the customer's own simulator.
//!
//! Run with: `cargo run --example ip_catalog`

use ipd::core::{bundle_key, unseal, AppletHost, AppletServer, CapabilitySet, IpCatalog};
use ipd::hdl::LogicVec;
use ipd::modgen::{
    BarrelShifter, CountDirection, Counter, GrayCounter, KcmMultiplier, Lfsr, PopCount,
};
use ipd::netlist::{testbench_verilog, TestVector};
use ipd::pack::Archive;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- vendor: a catalog of arithmetic & utility IP ------------------
    let mut catalog = IpCatalog::new("byu-arith-2002");
    catalog.add(
        "kcm",
        "constant coefficient multiplier (-56, 8x8->12)",
        || Box::new(KcmMultiplier::new(-56, 8, 12).signed(true)),
    );
    catalog.add("counter", "8-bit loadable up counter", || {
        Box::new(Counter::new(8, CountDirection::Up).loadable())
    });
    catalog.add("gray", "8-bit Gray-code counter", || {
        Box::new(GrayCounter::new(8))
    });
    catalog.add("lfsr", "16-bit maximal-length LFSR", || {
        Box::new(Lfsr::maximal(16))
    });
    catalog.add("bshift", "8-bit barrel shifter", || {
        Box::new(BarrelShifter::new(8))
    });
    catalog.add("popcount", "12-bit population counter", || {
        Box::new(PopCount::new(12))
    });
    println!("{}", catalog.listing());

    // ---- sealed ("encrypted class file") delivery ----------------------
    let vendor_key = b"byu-vendor-key".to_vec();
    let mut server = AppletServer::new("byu", vendor_key.clone());
    let license = server.enroll(
        "acme",
        "byu-arith-2002",
        CapabilitySet::evaluation(),
        0,
        365,
    );
    let sealed = server.serve_sealed("acme", 30, &vendor_key)?;
    println!("sealed delivery: {} bundle(s)", sealed.len());
    let key = bundle_key(&vendor_key, &license);
    let mut total = 0usize;
    for (name, bytes) in &sealed {
        let plain = unseal(bytes, &key)?;
        let archive = Archive::from_bytes(&plain)?;
        println!(
            "  {name:<10} {:>4} kB sealed, {} entries after unsealing",
            bytes.len().div_ceil(1024),
            archive.len()
        );
        total += bytes.len();
    }
    println!(
        "  total {} kB (wrong license key fails authentication)\n",
        total.div_ceil(1024)
    );

    // ---- customer: evaluate two modules from one applet ----------------
    let executable = server.serve("acme", 30)?;
    let mut host = AppletHost::new();
    host.load(&executable);

    println!("== evaluating `popcount` ==");
    let mut session = catalog.open("popcount", &executable, &host)?;
    session.build()?;
    let mut vectors = Vec::new();
    for v in [0u64, 1, 0xFFF, 0xA5A, 0x421] {
        session.set_u64("d", v)?;
        let o = session.peek("o")?;
        println!("  popcount({v:#05x}) = {:?}", o.to_u64());
        vectors.push(
            TestVector::new()
                .set("d", LogicVec::from_u64(v, 12))
                .expect("o", o),
        );
    }

    // ---- generated testbench for the customer's Verilog flow -----------
    // (the PLI-wrapper analog: the applet session replayed offline).
    let circuit = ipd::hdl::Circuit::from_generator(&PopCount::new(12))?;
    let tb = testbench_verilog(&circuit, &vectors, None)?;
    println!("\ngenerated self-checking testbench ({} bytes):", tb.len());
    for line in tb.lines().take(14) {
        println!("  {line}");
    }

    println!("\n== evaluating `gray` from the same applet ==");
    let mut session = catalog.open("gray", &executable, &host)?;
    session.build()?;
    session.set_u64("rst", 1)?;
    session.set_u64("ce", 1)?;
    session.cycle(1)?;
    session.set_u64("rst", 0)?;
    print!("  gray sequence:");
    for _ in 0..8 {
        session.cycle(1)?;
        print!(" {:02x}", session.peek("q")?.to_u64().unwrap_or(0));
    }
    println!(
        "\n\none applet, {} modules, one download.",
        catalog.entries().len()
    );
    Ok(())
}
