//! Black-box co-simulation — the paper's Figure 4: two protected IP
//! applets export port-level simulation models over sockets, and the
//! customer's system simulator drives them together with local
//! behavioral logic, never seeing the IP internals.
//!
//! Also prints the delivery-architecture comparison (applet-local vs
//! Web-CAD / JavaCAD remote simulation) the paper argues qualitatively.
//!
//! Run with: `cargo run --example black_box_cosim`

use std::time::Duration;

use ipd::core::AppletHost;
use ipd::cosim::{
    measure_local_event_cost, Approach, BehavioralModel, BlackBoxClient, BlackBoxServer,
    DeliveryScenario, LocalSimModel, SystemSimulator,
};
use ipd::hdl::{Circuit, LogicVec, PortDir};
use ipd::modgen::{FirFilter, KcmMultiplier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- vendor side: two protected IPs behind sockets ---------------
    // The user must explicitly allow network use (applet security
    // model, paper §4.2 footnote).
    let mut host = AppletHost::new();
    host.grant_network_permission();

    let fir = FirFilter::new(vec![-2, 5, 9, 5, -2], 8)?;
    let fir_circuit = Circuit::from_generator(&fir)?;

    let kcm = KcmMultiplier::new(-56, 8, 14).signed(true);
    let kcm_circuit = Circuit::from_generator(&kcm)?;

    let fir_server = BlackBoxServer::bind(&host)?;
    let kcm_server = BlackBoxServer::bind(&host)?;
    let fir_addr = fir_server.addr();
    let kcm_addr = kcm_server.addr();
    println!("FIR applet serving on  {fir_addr}");
    println!("KCM applet serving on  {kcm_addr}");
    let fir_thread = fir_server.spawn(LocalSimModel::new(&fir_circuit)?);
    let kcm_thread = kcm_server.spawn(LocalSimModel::new(&kcm_circuit)?);

    // ---- customer side: the system simulation -------------------------
    let mut system = SystemSimulator::new();
    // A local behavioral stimulus: a ramp of signed samples.
    let mut t = 0i64;
    let stimulus = system.add_model(
        "stimulus",
        Box::new(BehavioralModel::new(
            vec![("x".into(), PortDir::Output, 8)],
            move |_| {
                t += 7;
                vec![("x".into(), LogicVec::from_i64((t % 100) - 50, 8))]
            },
        )),
    );
    let fir_model = system.add_model("fir-applet", Box::new(BlackBoxClient::connect(fir_addr)?));
    let kcm_model = system.add_model("kcm-applet", Box::new(BlackBoxClient::connect(kcm_addr)?));
    system.connect(stimulus, "x", fir_model, "x")?;
    system.connect(stimulus, "x", kcm_model, "multiplicand")?;

    println!("\nsystem: stimulus -> [FIR black box], stimulus -> [KCM black box]");
    println!("cycle  x     fir.y      kcm.product");
    let mut samples = Vec::new();
    for cycle in 0..12u64 {
        let x = system.probe(stimulus, "x")?;
        let y = system.probe(fir_model, "y")?;
        let p = system.probe(kcm_model, "product")?;
        println!(
            "{cycle:>5}  {:>4}  {:>9}  {:>11}",
            x.to_i64().map_or_else(|| "X".into(), |v| v.to_string()),
            y.to_i64().map_or_else(|| "X".into(), |v| v.to_string()),
            p.to_i64().map_or_else(|| "X".into(), |v| v.to_string()),
        );
        if let Some(v) = x.to_i64() {
            samples.push(v);
        }
        system.step(1)?;
    }
    println!(
        "({} total steps; IP internals never left the vendor side)",
        system.steps()
    );

    drop(system); // closes client sockets; servers exit
    let _ = fir_thread.join();
    let _ = kcm_thread.join();

    // ---- the delivery-architecture comparison -------------------------
    println!("\n== applet-local vs remote simulation (paper §1.2/§4.2 claim) ==");
    let local_cost = measure_local_event_cost(&kcm_circuit, 2_000)?;
    println!("measured local event cost: {local_cost:?}");
    println!(
        "{:>8} | {:>14} {:>14} {:>14} | crossover(cycles)",
        "RTT", "applet (cyc/s)", "web-cad", "javacad-rmi"
    );
    for rtt_ms in [0u64, 1, 5, 10, 20, 50] {
        let scenario = DeliveryScenario {
            cycles: 10_000,
            events_per_cycle: 3,
            download_bytes: 795 * 1024,
            bandwidth_bytes_per_s: 128.0 * 1024.0,
            rtt: Duration::from_millis(rtt_ms),
            local_event_cost: local_cost,
        };
        let cross = scenario
            .crossover_cycles(Approach::WebCadRemote)
            .map_or_else(|| "never".to_owned(), |c| c.to_string());
        println!(
            "{:>6}ms | {:>14.0} {:>14.0} {:>14.0} | {cross}",
            rtt_ms,
            scenario.throughput(Approach::AppletLocal),
            scenario.throughput(Approach::WebCadRemote),
            scenario.throughput(Approach::JavaCadRmi),
        );
    }
    println!("\nshape check: applet throughput is RTT-independent; remote approaches");
    println!("degrade with RTT, and the one-time download pays for itself within");
    println!("seconds of WAN-latency simulation.");
    Ok(())
}
