//! Exhaustive verification of the paper's KCM instance with the
//! bit-parallel batch engine.
//!
//! The paper's running example (8-bit multiplicand, 12-bit product,
//! signed, pipelined, constant −56) has exactly 256 possible inputs, so
//! the applet can prove the delivered netlist against its golden model
//! by sweeping all of them. The sweep packs 64 stimulus vectors per
//! simulator pass (one per bit-plane lane) and shards passes across
//! threads.
//!
//! Run with: `cargo run --example batch_sweep`

use ipd::hdl::Circuit;
use ipd::modgen::KcmMultiplier;
use ipd::sim::VectorSweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kcm = KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true);
    let circuit = Circuit::from_generator(&kcm)?;
    println!("== design ==");
    println!("  constant      : {}", kcm.constant());
    println!(
        "  input width   : {} (=> 256-vector exhaustive sweep)",
        kcm.input_width()
    );
    println!("  product width : {}", kcm.product_width());
    println!("  latency       : {} cycles", kcm.latency());
    println!("  primitives    : {}", circuit.primitive_count());

    // The generator emits both the stimulus set and the golden model.
    let stimuli = kcm.sweep_stimuli();
    let golden = kcm.expected_products();

    let sweep = VectorSweep::with_clock(&circuit, "clk")?.cycles(u64::from(kcm.latency()));
    let report = sweep.run(&stimuli)?;

    println!("\n== sweep ==");
    for stats in &report.shards {
        println!(
            "  shard {} : {:3} vectors in {:9.1?} ({:8.0} vectors/s)",
            stats.shard,
            stats.vectors,
            stats.elapsed,
            stats.vectors_per_sec()
        );
    }
    println!(
        "  total   : {} vectors in {:.1?} ({:.0} vectors/s)",
        report.total_vectors(),
        report.elapsed,
        report.vectors_per_sec()
    );

    // Check every product against the golden model.
    let mut mismatches = 0u32;
    for (k, (outputs, expect)) in report.outputs.iter().zip(&golden).enumerate() {
        let product = outputs
            .iter()
            .find(|(port, _)| port == "product")
            .map(|(_, value)| value)
            .ok_or("product port missing from sweep outputs")?;
        let got = product.to_i64().ok_or("product not fully driven")?;
        if got != *expect {
            let x = stimuli[k][0].1.to_i64().unwrap_or(i64::MIN);
            eprintln!("  MISMATCH x={x}: got {got}, expected {expect}");
            mismatches += 1;
        }
    }
    println!("\n== verdict ==");
    if mismatches == 0 {
        println!(
            "  all {} products match reference_product() — netlist proven",
            golden.len()
        );
        Ok(())
    } else {
        Err(format!("{mismatches} mismatching products").into())
    }
}
