//! Exhaustive verification of the paper's KCM instance with the
//! compiled bit-parallel engine.
//!
//! The paper's running example (8-bit multiplicand, 12-bit product,
//! signed, pipelined, constant −56) has exactly 256 possible inputs, so
//! the applet can prove the delivered netlist against its golden model
//! by sweeping all of them. The sweep lowers the netlist to bytecode
//! once and packs all 256 stimulus vectors into a single 256-lane
//! compiled pass; the interpreted 64-lane engine runs the same sweep
//! for comparison.
//!
//! Run with: `cargo run --example batch_sweep`

use ipd::hdl::Circuit;
use ipd::modgen::KcmMultiplier;
use ipd::sim::{SweepEngine, VectorSweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kcm = KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true);
    let circuit = Circuit::from_generator(&kcm)?;
    println!("== design ==");
    println!("  constant      : {}", kcm.constant());
    println!(
        "  input width   : {} (=> 256-vector exhaustive sweep)",
        kcm.input_width()
    );
    println!("  product width : {}", kcm.product_width());
    println!("  latency       : {} cycles", kcm.latency());
    println!("  primitives    : {}", circuit.primitive_count());

    // The generator emits both the stimulus set and the golden model.
    let stimuli = kcm.sweep_stimuli();
    let golden = kcm.expected_products();

    let sweep = VectorSweep::with_clock(&circuit, "clk")?.cycles(u64::from(kcm.latency()));
    let report = sweep.run(&stimuli)?;

    // The same sweep on the interpreted 64-lane engine: the proof
    // must not depend on which engine ran it.
    let interpreted = sweep
        .clone()
        .engine(SweepEngine::Interpreted)
        .run(&stimuli)?;
    assert_eq!(
        report.outputs, interpreted.outputs,
        "engines must agree on every vector"
    );

    println!("\n== sweep (compiled engine, 256 lanes/shard) ==");
    for stats in &report.shards {
        println!(
            "  shard {} : {:3} vectors in {:9.1?} ({:8.0} vectors/s)",
            stats.shard,
            stats.vectors,
            stats.elapsed,
            stats.vectors_per_sec()
        );
    }
    println!(
        "  total   : {} vectors in {:.1?} ({:.0} vectors/s)",
        report.total_vectors(),
        report.elapsed,
        report.vectors_per_sec()
    );

    // Engine-vs-engine: one cold 256-vector pass is dominated by
    // shard setup, so time warm repeated sweeps, single-threaded.
    const REPEATS: u32 = 20;
    let mut rates = Vec::new();
    for engine in [SweepEngine::Compiled, SweepEngine::Interpreted] {
        let runner = sweep.clone().engine(engine).threads(1);
        runner.run(&stimuli)?; // warm up
        let start = std::time::Instant::now();
        for _ in 0..REPEATS {
            runner.run(&stimuli)?;
        }
        let rate =
            f64::from(REPEATS) * stimuli.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
        println!("  {engine:?} engine (warm, 1 thread): {rate:8.0} vectors/s");
        rates.push(rate);
    }
    println!(
        "  compiled is {:.1}x the interpreted engine on this sweep",
        rates[0] / rates[1].max(1e-9)
    );

    // Check every product against the golden model.
    let mut mismatches = 0u32;
    for (k, (outputs, expect)) in report.outputs.iter().zip(&golden).enumerate() {
        let product = outputs
            .iter()
            .find(|(port, _)| port == "product")
            .map(|(_, value)| value)
            .ok_or("product port missing from sweep outputs")?;
        let got = product.to_i64().ok_or("product not fully driven")?;
        if got != *expect {
            let x = stimuli[k][0].1.to_i64().unwrap_or(i64::MIN);
            eprintln!("  MISMATCH x={x}: got {got}, expected {expect}");
            mismatches += 1;
        }
    }
    println!("\n== verdict ==");
    if mismatches == 0 {
        println!(
            "  all {} products match reference_product() — netlist proven",
            golden.len()
        );
        Ok(())
    } else {
        Err(format!("{mismatches} mismatching products").into())
    }
}
