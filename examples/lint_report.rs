//! Lint-gated delivery: run the static analyzer the way a vendor does
//! before sealing a design for a customer.
//!
//! Run with: `cargo run --example lint_report`
//!
//! 1. A generator-built KCM lints clean — nothing to waive.
//! 2. A hand-built SR latch trips the combinational-loop rule, and the
//!    server refuses to seal it for delivery.
//! 3. An explicit, reasoned waiver lets the same design ship, with the
//!    waiver recorded in the report that accompanies the payload.

use ipd::core::{AppletServer, CapabilitySet, CoreError};
use ipd::hdl::{Circuit, PortSpec, Primitive};
use ipd::lint::{lint, LintConfig, Linter};
use ipd::modgen::KcmMultiplier;

/// A cross-coupled NOR latch: functional on purpose, but combinational
/// feedback — exactly what a lint waiver exists for.
fn sr_latch() -> Result<Circuit, ipd::hdl::HdlError> {
    let mut c = Circuit::new("latch");
    let mut ctx = c.root_ctx();
    let s = ctx.add_port(PortSpec::input("s", 1))?;
    let r = ctx.add_port(PortSpec::input("r", 1))?;
    let q = ctx.add_port(PortSpec::output("q", 1))?;
    let nq = ctx.wire("nq", 1);
    let ports = || {
        vec![
            PortSpec::input("i0", 1),
            PortSpec::input("i1", 1),
            PortSpec::output("o", 1),
        ]
    };
    ctx.leaf(
        Primitive::new("virtex", "nor2"),
        ports(),
        "n0",
        &[("i0", r.into()), ("i1", nq.into()), ("o", q.into())],
    )?;
    ctx.leaf(
        Primitive::new("virtex", "nor2"),
        ports(),
        "n1",
        &[("i0", s.into()), ("i1", q.into()), ("o", nq.into())],
    )?;
    Ok(c)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's KCM is clean out of the generator.
    let kcm = Circuit::from_generator(&KcmMultiplier::new(-56, 8, 12).signed(true))?;
    let report = lint(&kcm)?;
    println!("kcm: {}", report.summary());
    assert!(report.is_clean());

    // 2. The latch trips comb-loop, and delivery refuses it.
    let latch = sr_latch()?;
    println!("\nlatch, unwaived:");
    print!("{}", lint(&latch)?);

    let vendor_key = b"vendor-key".to_vec();
    let mut server = AppletServer::new("byu", vendor_key.clone());
    server.enroll("acme", "latch", CapabilitySet::licensed(), 0, 365);
    let strict = LintConfig::new();
    match server.serve_design_sealed("acme", 10, &vendor_key, &latch, &strict) {
        Err(CoreError::LintRejected { errors, summary }) => {
            println!("\nrefused to seal: {errors} error(s) — {summary}");
        }
        other => panic!("expected a lint rejection, got {other:?}"),
    }

    // 3. With a reasoned waiver the same design ships, and the report
    //    that travels with it records what was excused and why.
    let mut waived = LintConfig::new();
    waived.waive(
        "comb-loop",
        "latch/n*",
        "cross-coupled latch is the product, reviewed 2026-08",
    );
    println!("\nlatch, waived:");
    print!("{}", Linter::with_config(waived.clone()).run(&latch)?);
    let sealed = server.serve_design_sealed("acme", 11, &vendor_key, &latch, &waived)?;
    println!(
        "sealed {} bytes; shipped report: {}",
        sealed.bytes().len(),
        sealed.report().summary()
    );
    for record in server.audit_log() {
        println!("audit day {:>2}: {}", record.day, record.outcome);
    }
    Ok(())
}
