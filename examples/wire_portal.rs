//! The vendor portal as a network service — the paper's web-server
//! delivery (§1.1) on a real socket, sharing one framed transport
//! (`ipd-wire`) with the Figure 4 co-simulation stack.
//!
//! A `DeliveryService` wraps the `AppletServer` behind a concurrent
//! wire server; customers authenticate with their id at the handshake
//! and drive the same flows as in-process: manifest, HTTP-304-style
//! conditional fetch (`AppletHost::sync_wire`), lint reports, and a
//! lint-gated design sealed to their license key. Both sides keep
//! per-endpoint traffic counters that reconcile exactly.
//!
//! Run with: `cargo run --example wire_portal`

use std::sync::Arc;
use std::thread;

use ipd::core::{
    bundle_key, unseal, AppletHost, AppletServer, CapabilitySet, CoreError, DeliveryClient,
    DeliveryService,
};
use ipd::hdl::Circuit;
use ipd::lint::LintConfig;
use ipd::modgen::KcmMultiplier;
use ipd::wire::{WireConfig, WireError};

const VENDOR_KEY: &[u8] = b"vendor-signing-key";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // == The vendor side: enroll customers, register a design, serve ==
    let mut server = AppletServer::new("byu", VENDOR_KEY.to_vec());
    server.enroll(
        "browsing-bob",
        "virtex-kcm",
        CapabilitySet::passive(),
        0,
        90,
    );
    server.enroll(
        "evaluating-eve",
        "virtex-kcm",
        CapabilitySet::evaluation(),
        0,
        90,
    );
    let lucy_license = server.enroll(
        "licensed-lucy",
        "virtex-kcm",
        CapabilitySet::licensed(),
        0,
        365,
    );
    server.enroll("expired-ed", "virtex-kcm", CapabilitySet::licensed(), 0, 5);

    let kcm = Circuit::from_generator(&KcmMultiplier::new(-56, 8, 12).signed(true))?;
    let service = Arc::new(DeliveryService::new(server, VENDOR_KEY.to_vec()));
    service.register_design("virtex-kcm", kcm, LintConfig::default());
    let running = service.serve(WireConfig::default())?;
    let addr = running.addr();
    println!("vendor portal listening on {addr}\n");

    // == Three customers arrive concurrently, each an authenticated
    // session doing a cold sync then a warm revisit ==
    let mut visitors = Vec::new();
    for customer in ["browsing-bob", "evaluating-eve", "licensed-lucy"] {
        visitors.push(thread::spawn(move || {
            let mut client = DeliveryClient::connect(addr, customer)?;
            let manifest = client.manifest(10)?;
            let mut browser = AppletHost::new();
            let first = browser.sync_wire(&mut client, 10)?;
            let revisit = browser.sync_wire(&mut client, 11)?;
            client.close();
            Ok::<_, CoreError>((customer, manifest.entries().len(), first, revisit))
        }));
    }
    for visitor in visitors {
        let (customer, bundles, first, revisit) = visitor.join().expect("visitor thread")?;
        println!(
            "{customer:<16} {bundles} bundles; cold sync {} kB, revisit {revisit} bytes (304s)",
            first.div_ceil(1024)
        );
    }

    // == Lucy audits the design, then takes delivery of the sealed
    // netlist — lint gate and license seal, over the wire ==
    println!("\n== licensed-lucy fetches the lint-gated design ==");
    let mut lucy = DeliveryClient::connect(addr, "licensed-lucy")?;
    let report = lucy.lint_report(20, "virtex-kcm")?;
    println!(
        "lint report : {} ({} errors)",
        report.summary, report.errors
    );
    let sealed = lucy.sealed_design(20, "virtex-kcm")?;
    let key = bundle_key(VENDOR_KEY, &lucy_license);
    let edif = unseal(&sealed.bytes, &key)?;
    println!(
        "sealed EDIF : {} bytes sealed -> {} bytes of netlist after unsealing with lucy's license key",
        sealed.bytes.len(),
        edif.len()
    );
    lucy.close();

    // == The refusals: no profile fails the handshake, an expired
    // license fails per request with a typed unauthorized frame ==
    println!("\n== refusals ==");
    match DeliveryClient::connect(addr, "mallory") {
        Err(CoreError::Wire(WireError::Remote { code, message })) => {
            println!("mallory     : refused at handshake [{code:?}] {message}");
        }
        other => println!("mallory     : unexpected {other:?}"),
    }
    let mut ed = DeliveryClient::connect(addr, "expired-ed")?;
    match ed.manifest(100) {
        Err(CoreError::Wire(WireError::Remote { code, message })) => {
            println!("expired-ed  : admitted, then refused per request [{code:?}] {message}");
        }
        other => println!("expired-ed  : unexpected {other:?}"),
    }
    ed.close();

    // == The vendor's view: per-endpoint traffic and the audit log ==
    println!("\n== wire traffic (vendor side) ==");
    print!("{}", running.traffic_report());

    let service = running.shutdown()?;
    println!("\n== audit log ==");
    for record in service.audit_log() {
        println!(
            "  day {:>3}  {:<16} {}",
            record.day, record.customer, record.outcome
        );
    }
    Ok(())
}
