//! The constant-coefficient multiplier applet — the paper's Figures 1
//! and 3 as a terminal session.
//!
//! A vendor server issues an evaluation applet; the customer builds the
//! paper's exact instance (8-bit multiplicand, 12-bit product, signed,
//! pipelined, constant −56), browses the schematic and layout, cycles
//! the simulator, views waveforms, and — because this customer is
//! licensed — presses the Netlist button.
//!
//! Run with: `cargo run --example kcm_applet`

use ipd::core::{AppletHost, AppletServer, AppletSession, CapabilitySet};
use ipd::estimate::TimingConstraints;
use ipd::modgen::KcmMultiplier;
use ipd::netlist::NetlistFormat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- vendor side -------------------------------------------------
    let mut server = AppletServer::new("byu", b"vendor-signing-key".to_vec());
    server.enroll("acme", "virtex-kcm", CapabilitySet::licensed(), 0, 365);
    let executable = server.serve("acme", 42)?;
    println!("{executable}");

    // ---- browser side ------------------------------------------------
    let mut host = AppletHost::new();
    let fetched = host.load(&executable);
    println!(
        "downloaded {} kB of bundles: {:?}\n",
        fetched.div_ceil(1024),
        host.cached()
    );

    // Parameter panel (Figure 1): the paper's running example.
    let kcm = KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true);
    println!("== parameter panel ==");
    println!("  constant      : {}", kcm.constant());
    println!("  input width   : {}", kcm.input_width());
    println!("  product width : {}", kcm.product_width());
    println!("  signed        : {}", kcm.is_signed());
    println!(
        "  pipelined     : {} (latency {})",
        kcm.is_pipelined(),
        kcm.latency()
    );
    let latency = kcm.latency();

    let mut session = AppletSession::new(&executable, &host, Box::new(kcm));

    // [build] button.
    session.build()?;
    println!("\n== build ==\n{} built", session.generator_name());

    // Evaluation panel: area and timing estimates.
    println!("\n== estimates ==");
    print!("{}", session.estimate_area()?);
    print!("{}", session.estimate_timing()?);

    // Timing-closure panel: the customer's question is not "how fast
    // is it" but "does it close 150 MHz in *my* clocking scheme".
    // Pipelining is the knob: the combinational instance misses the
    // constraint, the pipelined one (the paper's configuration) meets
    // it with positive slack — watch the histogram go green.
    println!("\n== timing closure @ 150 MHz ==");
    let mut constraints = TimingConstraints::new();
    constraints.clock("clk", 1000.0 / 150.0, "clk");
    constraints.output_delay("clk", 0.0, "product");
    let comb = KcmMultiplier::new(-56, 8, 12).signed(true);
    let mut comb_session = AppletSession::new(&executable, &host, Box::new(comb));
    comb_session.build()?;
    println!("pipelined off:");
    print!("{}", comb_session.slack_summary(&constraints)?);
    println!("pipelined on:");
    print!("{}", session.slack_summary(&constraints)?);

    // Schematic browser (Figure 3).
    println!("\n== schematic (top level) ==");
    let schematic = session.schematic()?;
    for line in schematic.lines().take(24) {
        println!("{line}");
    }

    // Layout viewer.
    println!("\n== layout ==");
    print!("{}", session.layout()?);

    // Simulator panel: Cycle / Reset buttons with waveforms.
    println!("\n== simulation ==");
    session.record("product")?;
    for x in [-128i64, -56, -1, 0, 1, 77, 127] {
        session.set_i64("multiplicand", x)?;
        session.cycle(u64::from(latency))?;
        let product = session.peek("product")?;
        println!(
            "  multiplicand={x:>5}  product={} ({:?})",
            product,
            product.to_i64()
        );
    }
    println!("\n== waveform viewer ==");
    print!("{}", session.waveforms()?);
    session.reset()?;

    // [netlist] button — licensed customers only.
    println!("\n== netlist (EDIF) ==");
    let edif = session.netlist(NetlistFormat::Edif)?;
    println!("generated {} bytes of EDIF; first lines:", edif.len());
    for line in edif.lines().take(6) {
        println!("  {line}");
    }

    println!(
        "\nvendor metering: acme accessed {} time(s)",
        server.access_count("acme")
    );
    Ok(())
}
