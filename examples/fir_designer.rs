//! FIR filter delivery — the paper's "more complicated IP" future-work
//! item: design a transposed-form FIR from KCM taps, evaluate it,
//! deliver structural VHDL, and run the vendor's protection passes
//! (watermark + obfuscation) on the delivered instance.
//!
//! Run with: `cargo run --example fir_designer`

use ipd::core::{embed_watermark, obfuscate, verify_watermark};
use ipd::estimate::{analyze_timing, estimate_area, estimate_timing, TimingConstraints};
use ipd::hdl::Circuit;
use ipd::modgen::FirFilter;
use ipd::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small symmetric low-pass filter.
    let coefficients = vec![-2i64, 5, 9, 5, -2];
    let fir = FirFilter::new(coefficients.clone(), 8)?;
    println!(
        "FIR: {} taps {:?}, input {} bits, output {} bits, latency {}",
        fir.taps(),
        fir.coefficients(),
        fir.input_width(),
        fir.output_width(),
        fir.latency()
    );

    let mut circuit = Circuit::from_generator(&fir)?;
    let report = ipd::hdl::validate(&circuit)?;
    println!("{report}");
    print!("{}", estimate_area(&circuit)?);
    print!("{}", estimate_timing(&circuit)?);

    // Constraint-evaluated timing: slack for every register and output
    // against the customer's 25 MHz sample clock, as a histogram.
    let mut constraints = TimingConstraints::new();
    constraints.clock("clk", 40.0, "clk");
    constraints.output_delay("clk", 0.0, "y");
    let sta = analyze_timing(&circuit, &constraints)?;
    println!("\ntiming closure @ 25 MHz: {}", sta.summary());
    for histogram in sta.histograms() {
        print!("{histogram}");
    }
    assert_eq!(sta.violations(), 0, "the shipped FIR must close its clock");

    // Impulse response check: should replay the coefficients.
    let mut sim = Simulator::new(&circuit)?;
    let mut samples = vec![1i64];
    samples.extend(std::iter::repeat_n(0, fir.taps() + 2));
    let reference = fir.reference(&samples);
    println!("\nimpulse response:");
    for (n, &x) in samples.iter().enumerate() {
        let y = sim.peek("y")?.to_i64().expect("driven");
        println!("  n={n:<2} x={x:<2} y={y}");
        assert_eq!(i128::from(y), reference[n], "hardware == reference model");
        sim.set_i64("x", x)?;
        sim.cycle(1)?;
    }
    println!("impulse response == coefficients (shifted by pipeline fill)");

    // Vendor protection: watermark the delivered instance for this
    // customer, then obfuscate before netlisting.
    embed_watermark(&mut circuit, "acme", "fir-lowpass", b"vendor-key")?;
    let delivered = obfuscate(&circuit)?;
    println!(
        "\ndelivered netlist: {} primitives, hierarchy depth {} (was {})",
        delivered.primitive_count(),
        delivered.depth(),
        circuit.depth()
    );
    assert!(verify_watermark(
        &delivered,
        "acme",
        "fir-lowpass",
        b"vendor-key"
    ));
    assert!(!verify_watermark(
        &delivered,
        "rival",
        "fir-lowpass",
        b"vendor-key"
    ));
    println!("watermark verifies for acme and nobody else, even after obfuscation");

    // The obfuscated instance still works.
    let mut hidden_sim = Simulator::new(&delivered)?;
    hidden_sim.set_i64("x", 1)?;
    hidden_sim.cycle(1)?;
    hidden_sim.set_i64("x", 0)?;
    hidden_sim.cycle(1)?;
    println!("obfuscated instance simulates: y={}", hidden_sim.peek("y")?);

    // Structural VHDL for the customer tool chain.
    let vhdl = ipd::netlist::vhdl_string(&delivered)?;
    println!("\nVHDL ({} bytes), first lines:", vhdl.len());
    for line in vhdl.lines().take(10) {
        println!("  {line}");
    }
    Ok(())
}
